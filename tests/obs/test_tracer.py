"""Tracer unit tests: parenting, the ring sink, export, and the null."""

import threading

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    build_forest,
    format_forest,
)
from repro.stats.counters import Counters


class FakeClock:
    """Deterministic monotonic clock advancing 1ms per read."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


def make_tracer(capacity: int = 64, counters=None) -> Tracer:
    return Tracer(capacity=capacity, counters=counters, clock=FakeClock())


# ------------------------------------------------------------- parenting


def test_begin_finish_records_span():
    t = make_tracer()
    span = t.begin("wal.flush", records=3)
    assert t.current() is span
    t.finish(span)
    assert t.current() is None
    (got,) = t.spans()
    assert got.name == "wal.flush"
    assert got.attrs == {"records": 3}
    assert got.parent_id is None
    assert got.duration > 0.0


def test_nested_spans_parent_on_thread_stack():
    t = make_tracer()
    with t.span("outer") as outer:
        with t.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    spans = {s.name: s for s in t.spans()}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id is None


def test_explicit_cross_thread_parent():
    t = make_tracer()
    root = t.begin("rebuild.run")
    child_holder = {}

    def worker() -> None:
        # No thread-local context here; the explicit parent wires the
        # worker's span under the driver's root.
        span = t.begin("rebuild.worker", parent=root)
        t.finish(span)
        child_holder["span"] = span

    th = threading.Thread(target=worker)
    th.start()
    th.join(timeout=5)
    assert not th.is_alive()
    t.finish(root)
    assert child_holder["span"].parent_id == root.span_id


def test_parent_accepts_span_id():
    t = make_tracer()
    root = t.begin("root")
    t.finish(root)
    child = t.begin("child", parent=root.span_id)
    t.finish(child)
    assert child.parent_id == root.span_id


def test_exception_unwind_closes_inner_spans():
    t = make_tracer()
    outer = t.begin("outer")
    t.begin("inner")  # never finished explicitly
    t.finish(outer)  # must close the orphan too
    spans = {s.name: s for s in t.spans()}
    assert set(spans) == {"outer", "inner"}
    assert spans["inner"].end == spans["outer"].end
    assert t.current() is None


def test_event_is_zero_duration():
    t = make_tracer()
    clock = t.clock
    orig = clock.__call__
    # Freeze the clock so begin and finish read the same instant.
    t.clock = lambda: 1.0
    span = t.event("rebuild.seam_release", worker=1)
    t.clock = orig
    assert span.duration == 0.0
    assert t.spans()[-1] is span


def test_span_context_manager_finishes_on_exception():
    t = make_tracer()
    with pytest.raises(RuntimeError):
        with t.span("boom"):
            raise RuntimeError("x")
    (span,) = t.spans()
    assert span.name == "boom" and span.end > 0.0
    assert t.current() is None


# ------------------------------------------------------------------ ring


def test_ring_bounds_memory_and_counts_drops():
    counters = Counters()
    t = make_tracer(capacity=4, counters=counters)
    for i in range(10):
        t.event(f"e{i}")
    spans = t.spans()
    assert len(spans) == 4
    assert [s.name for s in spans] == ["e6", "e7", "e8", "e9"]
    assert counters.obs_spans == 10
    assert counters.obs_spans_dropped == 6


def test_drain_empties_the_ring():
    t = make_tracer()
    t.event("a")
    t.event("b")
    drained = t.drain()
    assert [s.name for s in drained] == ["a", "b"]
    assert t.spans() == []


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


# ---------------------------------------------------------------- forest


def test_build_forest_orphans_become_roots():
    t = make_tracer(capacity=2)
    root = t.begin("root")
    t.finish(root)
    child = t.begin("child", parent=root.span_id)
    t.finish(child)
    grandchild = t.begin("grandchild", parent=child.span_id)
    t.finish(grandchild)
    # capacity 2: root fell off the ring; child becomes a root.
    roots = t.forest()
    assert [r["span"].name for r in roots] == ["child"]
    assert [c["span"].name for c in roots[0]["children"]] == ["grandchild"]


def test_forest_sorted_by_start():
    spans = [
        Span("b", 2, None, 5.0, "t", None),
        Span("a", 1, None, 1.0, "t", None),
        Span("a.1", 3, 1, 2.0, "t", None),
    ]
    for s in spans:
        s.end = s.start + 1.0
    roots = build_forest(spans)
    assert [r["span"].name for r in roots] == ["a", "b"]
    text = format_forest(roots)
    lines = text.splitlines()
    assert lines[0].startswith("a ")
    assert lines[1].startswith("  a.1 ")  # indented child
    assert "+1000.00ms" in lines[1]  # relative to clock_zero = 1.0


def test_tracer_format_forest_method():
    t = make_tracer()
    with t.span("outer"):
        t.event("inner")
    text = t.format_forest()
    lines = text.splitlines()
    assert lines[0].startswith("outer ")
    assert lines[1].startswith("  inner ")
    assert NULL_TRACER.format_forest() == ""


# ---------------------------------------------------------------- export


def test_jsonl_round_trip(tmp_path):
    t = make_tracer()
    with t.span("outer", epoch=7):
        t.event("inner")
    path = str(tmp_path / "spans.jsonl")
    n = t.export_jsonl(path)
    assert n == 2
    back = Tracer.import_jsonl(path)
    orig = t.spans()
    assert [s.to_dict() for s in back] == [s.to_dict() for s in orig]


def test_span_dict_round_trip():
    span = Span("x", 9, 4, 1.5, "T", {"k": 1})
    span.end = 2.5
    clone = Span.from_dict(span.to_dict())
    assert clone.to_dict() == span.to_dict()
    assert clone.duration == 1.0


# ------------------------------------------------------------------ null


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin("x") is None
    assert NULL_TRACER.event("x") is None
    assert NULL_TRACER.current() is None
    NULL_TRACER.finish(None)
    with NULL_TRACER.span("x") as got:
        assert got is None
    assert NULL_TRACER.spans() == []


def test_threads_do_not_share_span_stacks():
    t = make_tracer()
    t.begin("main-open")  # left open on the main thread
    seen = {}

    def worker() -> None:
        seen["current"] = t.current()
        span = t.begin("w")
        t.finish(span)
        seen["span"] = span

    th = threading.Thread(target=worker)
    th.start()
    th.join(timeout=5)
    assert not th.is_alive()
    # The worker saw no current span and parented nothing under main's.
    assert seen["current"] is None
    assert seen["span"].parent_id is None
