"""Unit tests for the latch manager (S/X page latches)."""

import threading

import pytest

from repro.concurrency.latch import LatchManager, LatchMode
from repro.errors import LatchError, LockTimeoutError
from repro.stats.counters import Counters


@pytest.fixture
def latches() -> LatchManager:
    return LatchManager(counters=Counters(), timeout=2.0)


def test_s_latches_share(latches):
    latches.acquire(1, LatchMode.S)
    done = threading.Event()

    def other():
        latches.acquire(1, LatchMode.S)
        latches.release(1)
        done.set()

    t = threading.Thread(target=other)
    t.start()
    t.join(2)
    assert done.is_set()
    latches.release(1)


def test_x_excludes_s(latches):
    latches.acquire(1, LatchMode.X)
    blocked = threading.Event()
    acquired = threading.Event()

    def other():
        blocked.set()
        latches.acquire(1, LatchMode.S)
        acquired.set()
        latches.release(1)

    t = threading.Thread(target=other)
    t.start()
    blocked.wait(2)
    assert not acquired.wait(0.2)
    latches.release(1)
    assert acquired.wait(2)
    t.join()


def test_s_excludes_x(latches):
    latches.acquire(1, LatchMode.S)
    results = []

    def other():
        results.append(latches.try_acquire(1, LatchMode.X))
        if results[-1]:
            latches.release(1)

    t = threading.Thread(target=other)
    t.start()
    t.join(2)
    assert results == [False]
    latches.release(1)

    t2 = threading.Thread(target=other)
    t2.start()
    t2.join(2)
    assert results == [False, True]


def test_try_acquire_never_blocks(latches):
    latches.acquire(1, LatchMode.X)
    done = threading.Event()
    results = []

    def other():
        results.append(latches.try_acquire(1, LatchMode.S))
        done.set()

    threading.Thread(target=other).start()
    assert done.wait(2)
    assert results == [False]
    latches.release(1)


def test_not_reentrant(latches):
    latches.acquire(1, LatchMode.S)
    with pytest.raises(LatchError):
        latches.acquire(1, LatchMode.S)
    latches.release(1)


def test_release_without_hold_raises(latches):
    with pytest.raises(LatchError):
        latches.release(1)


def test_release_all(latches):
    latches.acquire(1, LatchMode.S)
    latches.acquire(2, LatchMode.X)
    latches.release_all()
    assert latches.held_by_me() == {}
    # And everything is acquirable again.
    assert latches.try_acquire(1, LatchMode.X)
    latches.release(1)


def test_holds_reports_mode(latches):
    latches.acquire(1, LatchMode.X)
    assert latches.holds(1)
    assert latches.holds(1, LatchMode.X)
    assert not latches.holds(1, LatchMode.S)
    assert not latches.holds(2)
    latches.release(1)


def test_watchdog_timeout_raises(latches):
    latches.acquire(1, LatchMode.X)
    errors = []

    def other():
        try:
            latches.acquire(1, LatchMode.X)
        except LockTimeoutError as exc:
            errors.append(exc)

    t = threading.Thread(target=other)
    t.start()
    t.join(5)
    assert errors  # never released: the watchdog fired
    latches.release(1)


def test_distinct_pages_independent(latches):
    latches.acquire(1, LatchMode.X)
    assert latches.try_acquire(2, LatchMode.X)
    latches.release(1)
    latches.release(2)


def test_many_threads_mutual_exclusion(latches):
    counter = {"value": 0, "inside": 0}
    errors = []

    def worker():
        try:
            for _ in range(50):
                latches.acquire(7, LatchMode.X)
                counter["inside"] += 1
                assert counter["inside"] == 1
                counter["value"] += 1
                counter["inside"] -= 1
                latches.release(7)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert counter["value"] == 300
