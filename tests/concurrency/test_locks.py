"""Unit tests for the lock manager: modes, FIFO, instant duration,
deadlock detection (including no-false-positives after release)."""

import threading
import time

import pytest

from repro.concurrency.locks import LockManager, LockMode, LockSpace
from repro.errors import DeadlockError, LockError
from repro.stats.counters import Counters

ADDR = LockSpace.ADDRESS
LOGI = LockSpace.LOGICAL


@pytest.fixture
def locks() -> LockManager:
    return LockManager(counters=Counters(), timeout=3.0)


def test_grant_and_release(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    assert locks.holds(1, ADDR, "r", LockMode.X)
    locks.release(1, ADDR, "r")
    assert not locks.holds(1, ADDR, "r")


def test_s_locks_share(locks):
    locks.acquire(1, ADDR, "r", LockMode.S)
    locks.acquire(2, ADDR, "r", LockMode.S)
    assert locks.holds(1, ADDR, "r")
    assert locks.holds(2, ADDR, "r")


def test_x_is_exclusive(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    assert not locks.try_acquire(2, ADDR, "r", LockMode.S)
    assert not locks.try_acquire(2, ADDR, "r", LockMode.X)


def test_reacquire_same_mode_is_noop(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    locks.acquire(1, ADDR, "r", LockMode.X)
    locks.release(1, ADDR, "r")
    assert not locks.holds(1, ADDR, "r")


def test_x_implies_s(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    locks.acquire(1, ADDR, "r", LockMode.S)  # already stronger
    assert locks.holds(1, ADDR, "r", LockMode.X)


def test_spaces_are_independent(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    assert locks.try_acquire(2, LOGI, "r", LockMode.X)


def test_release_unheld_raises(locks):
    with pytest.raises(LockError):
        locks.release(1, ADDR, "nothing")


def test_release_all_by_space(locks):
    locks.acquire(1, ADDR, "a", LockMode.X)
    locks.acquire(1, LOGI, "b", LockMode.X)
    locks.release_all(1, ADDR)
    assert not locks.holds(1, ADDR, "a")
    assert locks.holds(1, LOGI, "b")
    locks.release_all(1)
    assert not locks.holds(1, LOGI, "b")


def test_blocking_acquire_waits_for_release(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    got = threading.Event()

    def other():
        locks.acquire(2, ADDR, "r", LockMode.X)
        got.set()
        locks.release(2, ADDR, "r")

    t = threading.Thread(target=other)
    t.start()
    assert not got.wait(0.2)
    locks.release(1, ADDR, "r")
    assert got.wait(3)
    t.join()


def test_wait_instant_blocks_until_holder_done(locks):
    """The §2.2 mechanism: a writer's instant S lock waits out a top action."""
    locks.acquire(1, ADDR, "page", LockMode.X)
    done = threading.Event()

    def writer():
        locks.wait_instant(2, ADDR, "page", LockMode.S)
        done.set()

    t = threading.Thread(target=writer)
    t.start()
    assert not done.wait(0.2)
    locks.release(1, ADDR, "page")
    assert done.wait(3)
    t.join()
    # Nothing is left held by the instant requester.
    assert locks.held_resources(2) == set()


def test_wait_instant_on_own_lock_keeps_it(locks):
    locks.acquire(1, ADDR, "page", LockMode.X)
    locks.wait_instant(1, ADDR, "page", LockMode.S)
    assert locks.holds(1, ADDR, "page", LockMode.X)


def test_fifo_fairness_x_not_starved(locks):
    """S requests queued behind a waiting X must not overtake it."""
    locks.acquire(1, ADDR, "r", LockMode.S)
    order = []

    def want_x():
        locks.acquire(2, ADDR, "r", LockMode.X)
        order.append("X")
        locks.release(2, ADDR, "r")

    def want_s():
        locks.acquire(3, ADDR, "r", LockMode.S)
        order.append("S")
        locks.release(3, ADDR, "r")

    tx = threading.Thread(target=want_x)
    tx.start()
    time.sleep(0.1)  # ensure X queues first
    ts = threading.Thread(target=want_s)
    ts.start()
    time.sleep(0.1)
    locks.release(1, ADDR, "r")
    tx.join(3)
    ts.join(3)
    assert order == ["X", "S"]


def test_compatible_waiters_wake_together(locks):
    locks.acquire(1, ADDR, "r", LockMode.X)
    got = []

    def want_s(txn):
        locks.acquire(txn, ADDR, "r", LockMode.S)
        got.append(txn)

    threads = [threading.Thread(target=want_s, args=(t,)) for t in (2, 3)]
    for t in threads:
        t.start()
    time.sleep(0.1)
    locks.release(1, ADDR, "r")
    for t in threads:
        t.join(3)
    assert sorted(got) == [2, 3]


def test_upgrade_s_to_x_when_sole_holder(locks):
    locks.acquire(1, ADDR, "r", LockMode.S)
    locks.acquire(1, ADDR, "r", LockMode.X)
    assert locks.holds(1, ADDR, "r", LockMode.X)


def test_two_txn_deadlock_detected(locks):
    locks.acquire(1, LOGI, "a", LockMode.X)
    locks.acquire(2, LOGI, "b", LockMode.X)
    hit = []
    granted = []

    def worker(txn, resource):
        try:
            locks.acquire(txn, LOGI, resource, LockMode.X)
            granted.append(txn)
        except DeadlockError:
            hit.append(txn)
            locks.release_all(txn)  # victim unblocks the survivor

    threads = [
        threading.Thread(target=worker, args=(1, "b")),
        threading.Thread(target=worker, args=(2, "a")),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    assert len(hit) == 1, hit  # exactly one victim
    assert len(granted) == 1  # the survivor got its lock
    survivor = granted[0]
    assert locks.holds(survivor, LOGI, "a")
    assert locks.holds(survivor, LOGI, "b")


def test_upgrade_deadlock_detected(locks):
    locks.acquire(1, LOGI, "r", LockMode.S)
    locks.acquire(2, LOGI, "r", LockMode.S)
    hit = []
    done = threading.Event()

    def upgrader(txn):
        try:
            locks.acquire(txn, LOGI, "r", LockMode.X)
        except DeadlockError:
            hit.append(txn)
            locks.release_all(txn)
        done.set()

    threads = [
        threading.Thread(target=upgrader, args=(t,)) for t in (1, 2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    assert len(hit) >= 1


def test_no_false_deadlock_from_stale_edges(locks):
    """The bug behind the rebuild's false victim: a waiter parked behind a
    lock that was released (but not yet rescheduled) must not look like a
    cycle to a new requester."""
    locks.acquire(1, ADDR, "page", LockMode.X)
    released = threading.Event()
    got = threading.Event()

    def instant_waiter():
        locks.wait_instant(2, ADDR, "page", LockMode.S)
        released.wait(3)  # stay alive, not blocked, after the instant wait
        got.set()

    t = threading.Thread(target=instant_waiter)
    t.start()
    time.sleep(0.1)
    locks.release(1, ADDR, "page")
    # Immediately re-request: txn 2's queue entry may still linger.
    locks.acquire(1, ADDR, "page", LockMode.X)  # must NOT raise DeadlockError
    locks.release(1, ADDR, "page")
    released.set()
    t.join(3)
    assert got.is_set()


def test_counters_track_calls(locks):
    before = locks.counters.lock_mgr_calls
    locks.acquire(1, ADDR, "r", LockMode.S)
    locks.try_acquire(2, ADDR, "r", LockMode.X)
    assert locks.counters.lock_mgr_calls - before == 2
