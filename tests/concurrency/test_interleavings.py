"""Deterministic interleaving tests for the paper's protocol claims (§2, §6.2).

Each test parks an engine thread at a syncpoint mid-top-action and probes
the tree from the main thread, asserting exactly who is blocked and who is
allowed through:

* SPLIT bits block writers but not readers (§2.2);
* a traversal arriving at the old page of an in-flight split follows the
  side entry to the new page (§2.3);
* SHRINK bits (rebuild copy phase) block readers too (§2.4, §4.1.1);
* blocked operations resume and succeed once the top action completes.
"""

import threading
import time

import pytest

from repro import Engine, OnlineRebuild, RebuildConfig
from repro.concurrency.syncpoints import Rendezvous
from tests.conftest import fill_index, intkey


@pytest.fixture
def engine() -> Engine:
    return Engine(buffer_capacity=2048, lock_timeout=10.0)


def run_thread(fn) -> threading.Thread:
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


def make_full_tree(engine: Engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 600, seed=None)  # ascending: many near-full leaves
    return index


def test_split_bit_blocks_concurrent_writer_until_nta_end(engine):
    index = make_full_tree(engine)
    rv = Rendezvous(timeout=10.0)
    engine.syncpoints.once("split.leaf_done", rv.engine_arrived)

    split_ctx = {}
    engine.syncpoints.once(
        "split.bits_set", lambda ctx: split_ctx.update(ctx)
    )

    def splitter():
        # Appending keys forces a split of the rightmost leaf.
        for k in range(10_000, 10_200):
            index.insert(intkey(k), k)

    t = run_thread(splitter)
    rv.wait_engine()
    # The split is parked with SPLIT bits set and latches released.
    old_page = split_ctx["page"]
    writer_done = threading.Event()

    def blocked_writer():
        # This delete targets the split page's key range: must wait.
        index.delete(intkey(599), 599)
        writer_done.set()

    w = run_thread(blocked_writer)
    assert not writer_done.wait(0.3), "writer ran through a SPLIT bit"
    rv.release()
    assert writer_done.wait(10), "writer never unblocked after NTA end"
    t.join(10)
    w.join(10)
    index.verify()


def test_split_bit_allows_concurrent_reader(engine):
    index = make_full_tree(engine)
    rv = Rendezvous(timeout=10.0)
    engine.syncpoints.once("split.leaf_done", rv.engine_arrived)

    def splitter():
        for k in range(10_000, 10_200):
            index.insert(intkey(k), k)

    t = run_thread(splitter)
    rv.wait_engine()
    # Readers pass SPLIT bits (§2.2): point reads in the split range work
    # while the split is still parked.
    assert index.contains(intkey(599), 599)
    assert index.contains(intkey(0), 0)
    rv.release()
    t.join(10)
    index.verify()


def test_side_entry_routes_reader_to_new_page(engine):
    index = make_full_tree(engine)
    rv = Rendezvous(timeout=10.0)
    split_info = {}

    def capture_and_park(ctx):
        split_info.update(ctx)
        rv.engine_arrived(ctx)

    engine.syncpoints.once("split.leaf_done", capture_and_park)

    def splitter():
        for k in range(10_000, 10_200):
            index.insert(intkey(k), k)

    t = run_thread(splitter)
    rv.wait_engine()
    # Keys >= the side key moved to the new page; the parent has no entry
    # for it yet, so a lookup can only succeed through the side entry.
    side_key = split_info["side_key"]
    moved = int.from_bytes(side_key[:4].ljust(4, b"\x00"), "big")
    # Find an existing key at/above the side key.
    probe = next(
        k for k in range(599, -1, -1)
        if intkey(k) + k.to_bytes(6, "big") >= side_key
    )
    assert index.contains(intkey(probe), probe)
    rv.release()
    t.join(10)
    index.verify()


def test_rebuild_shrink_bits_block_readers_then_release(engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 800, seed=None)
    for k in range(0, 800, 2):
        index.delete(intkey(k), k)
    rv = Rendezvous(timeout=10.0)
    locked = {}

    def park(ctx):
        locked.update(ctx)
        rv.engine_arrived(ctx)

    engine.syncpoints.once("rebuild.copy_locked", park)

    def rebuilder():
        OnlineRebuild(index, RebuildConfig(ntasize=8, xactsize=32)).run()

    t = run_thread(rebuilder)
    rv.wait_engine()
    reader_done = threading.Event()

    def blocked_reader():
        index.contains(intkey(1), 1)  # key on a SHRINK-bitted source page
        reader_done.set()

    r = run_thread(blocked_reader)
    assert not reader_done.wait(0.3), "reader ran through a SHRINK bit"
    rv.release()
    assert reader_done.wait(15), "reader never unblocked"
    t.join(30)
    r.join(10)
    index.verify()


def test_split_then_shrink_mode_allows_readers_during_copy(engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 800, seed=None)
    for k in range(0, 800, 2):
        index.delete(intkey(k), k)
    rv = Rendezvous(timeout=10.0)
    engine.syncpoints.once("rebuild.copy_locked", rv.engine_arrived)

    def rebuilder():
        OnlineRebuild(
            index,
            RebuildConfig(ntasize=8, xactsize=32, split_then_shrink=True),
        ).run()

    t = run_thread(rebuilder)
    rv.wait_engine()
    # §6.2 enhancement: with SPLIT bits staged on the old leaves, readers
    # get through during the copy.
    assert index.contains(intkey(1), 1)
    rv.release()
    t.join(30)
    index.verify()


def test_scan_survives_full_rebuild(engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 2000)
    for k in range(0, 2000, 2):
        index.delete(intkey(k), k)
    expected = [k for k in range(2000) if k % 2 == 1]

    scanner = index.scan()
    seen = [int.from_bytes(k, "big") for k, _ in (next(scanner),)]
    OnlineRebuild(index, RebuildConfig(ntasize=16, xactsize=64)).run()
    seen += [int.from_bytes(k, "big") for k, _ in scanner]
    assert seen == expected


def test_writer_during_rebuild_lands_correctly(engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 1500)
    for k in range(0, 1500, 2):
        index.delete(intkey(k), k)
    rv = Rendezvous(timeout=10.0)
    engine.syncpoints.once("rebuild.nta_end", rv.engine_arrived)

    def rebuilder():
        OnlineRebuild(index, RebuildConfig(ntasize=8, xactsize=32)).run()

    t = run_thread(rebuilder)
    rv.wait_engine()
    inserted = threading.Event()

    def writer():
        index.insert(intkey(100_000), 100_000)
        inserted.set()

    w = run_thread(writer)
    time.sleep(0.1)
    rv.release()
    t.join(30)
    w.join(10)
    assert inserted.is_set()
    assert index.contains(intkey(100_000), 100_000)
    index.verify()
