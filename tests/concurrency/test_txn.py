"""Unit tests for transactions and nested top actions."""

import pytest

from repro.concurrency.txn import TransactionManager, TxnState
from repro.errors import TransactionError
from repro.stats.counters import Counters
from repro.wal.log import LogManager
from repro.wal.records import LogRecord, RecordType


@pytest.fixture
def log() -> LogManager:
    return LogManager(counters=Counters())


@pytest.fixture
def txns(log) -> TransactionManager:
    mgr = TransactionManager(log, counters=Counters())
    mgr.set_undo_applier(lambda rec, clr_lsn: None)
    return mgr


def test_begin_registers_without_logging(txns, log):
    """BEGIN is implicit (ARIES): the first logged record starts the txn."""
    txn = txns.begin()
    assert txn.state is TxnState.ACTIVE
    assert txn.txn_id in txns.active
    assert list(log.scan()) == []  # nothing logged until the first change
    lsn = txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    assert txn.begin_lsn == lsn
    records = list(log.scan())
    assert records[0].txn_id == txn.txn_id
    assert records[0].prev_lsn == 0  # chain ends at the implicit begin


def test_records_chain_backwards(txns, log):
    txn = txns.begin()
    a = txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    b = txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=2))
    rec_b = log.record_at(b)
    assert rec_b.prev_lsn == a
    assert txn.last_lsn == b


def test_commit_flushes_and_finalizes(txns, log):
    txn = txns.begin()
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    txns.commit(txn)
    assert txn.state is TxnState.COMMITTED
    assert txn.txn_id not in txns.active
    durable = [r.type for r in log.scan(durable_only=True)]
    assert RecordType.TXN_COMMIT in durable


def test_readonly_commit_logs_nothing(txns, log):
    """A txn that logged no change leaves no trace in the log at all."""
    txn = txns.begin()
    txns.commit(txn)
    assert txn.state is TxnState.COMMITTED
    assert list(log.scan()) == []


def test_commit_twice_raises(txns):
    txn = txns.begin()
    txns.commit(txn)
    with pytest.raises(TransactionError):
        txns.commit(txn)


def test_abort_writes_clrs_and_abort_record(txns, log):
    undone = []
    txns.set_undo_applier(lambda rec, clr_lsn: undone.append(rec.page_id))
    txn = txns.begin()
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=2))
    txns.abort(txn)
    assert undone == [2, 1]  # reverse order
    types = [r.type for r in log.scan()]
    assert types.count(RecordType.CLR) == 2
    assert types[-1] is RecordType.TXN_ABORT
    assert txn.state is TxnState.ABORTED


def test_completed_nta_skipped_by_rollback(txns, log):
    undone = []
    txns.set_undo_applier(lambda rec, clr_lsn: undone.append(rec.page_id))
    txn = txns.begin()
    txns.begin_nta(txn)
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=10))
    txns.end_nta(txn)
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=20))
    txns.abort(txn)
    assert undone == [20]  # the NTA's record was hopped over


def test_abort_nta_undoes_only_the_nta(txns):
    undone = []
    txns.set_undo_applier(lambda rec, clr_lsn: undone.append(rec.page_id))
    txn = txns.begin()
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    txns.begin_nta(txn)
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=2))
    txns.abort_nta(txn)
    assert undone == [2]
    assert txn.state is TxnState.ACTIVE


def test_nested_ntas(txns):
    undone = []
    txns.set_undo_applier(lambda rec, clr_lsn: undone.append(rec.page_id))
    txn = txns.begin()
    txns.begin_nta(txn)
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    txns.begin_nta(txn)
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=2))
    txns.end_nta(txn)  # inner completes
    txns.abort_nta(txn)  # outer aborts: undoes 1 but not 2
    assert undone == [1]
    txns.commit(txn)


def test_end_nta_without_begin_raises(txns):
    txn = txns.begin()
    with pytest.raises(TransactionError):
        txns.end_nta(txn)


def test_clr_not_reundone_on_crash_resume(txns, log):
    """Rolling back twice (as after a crash mid-rollback) must not
    double-apply: the CLR chain skips already-undone records."""
    undone = []
    txns.set_undo_applier(lambda rec, clr_lsn: undone.append(rec.page_id))
    txn = txns.begin()
    txns.append(txn, LogRecord(type=RecordType.DEALLOC, page_id=1))
    txns.rollback_to(txn, 0)
    txns.rollback_to(txn, 0)
    assert undone == [1]  # second rollback found only the CLR and skipped it


def test_commit_hooks_run(txns):
    fired = []
    txn = txns.begin()
    txn.commit_hooks.append(lambda: fired.append("commit"))
    txns.commit(txn)
    assert fired == ["commit"]


def test_abort_hooks_run(txns):
    fired = []
    txn = txns.begin()
    txn.abort_hooks.append(lambda: fired.append("abort"))
    txns.abort(txn)
    assert fired == ["abort"]


def test_lock_manager_release_on_commit(log):
    from repro.concurrency.locks import LockManager, LockMode, LockSpace

    locks = LockManager(counters=Counters())
    txns = TransactionManager(log, counters=Counters())
    txns.set_undo_applier(lambda rec, clr_lsn: None)
    txns.lock_manager = locks
    txn = txns.begin()
    locks.acquire(txn.txn_id, LockSpace.LOGICAL, "row", LockMode.X)
    txns.commit(txn)
    assert not locks.holds(txn.txn_id, LockSpace.LOGICAL, "row")
