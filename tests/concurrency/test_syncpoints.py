"""Unit tests for the syncpoint (failpoint) registry."""

import threading

import pytest

from repro.concurrency.syncpoints import CrashPoint, Rendezvous, SyncPoints


def test_fire_without_hooks_is_noop():
    sp = SyncPoints()
    sp.fire("anything", detail=1)  # must not raise


def test_hook_receives_context():
    sp = SyncPoints()
    seen = []
    sp.on("evt", seen.append)
    sp.fire("evt", page=5)
    assert seen[0]["page"] == 5
    assert seen[0]["syncpoint"] == "evt"


def test_once_detaches_after_first_fire():
    sp = SyncPoints()
    seen = []
    sp.once("evt", seen.append)
    sp.fire("evt")
    sp.fire("evt")
    assert len(seen) == 1


def test_remove_and_clear():
    sp = SyncPoints()
    seen = []
    hook = seen.append
    sp.on("evt", hook)
    sp.remove("evt", hook)
    sp.fire("evt")
    sp.on("evt", hook)
    sp.clear()
    sp.fire("evt")
    assert seen == []


def test_hooks_can_raise_crashpoint():
    sp = SyncPoints()

    def boom(ctx):
        raise CrashPoint("evt")

    sp.on("evt", boom)
    with pytest.raises(CrashPoint):
        sp.fire("evt")


def test_record_fires():
    sp = SyncPoints()
    sp.record_fires = True
    sp.fire("a")
    sp.fire("b")
    assert sp.fired == ["a", "b"]


def test_rendezvous_handshake():
    rv = Rendezvous(timeout=5.0)
    progress = []

    def engine():
        progress.append("before")
        rv.engine_arrived()
        progress.append("after")

    t = threading.Thread(target=engine)
    t.start()
    rv.wait_engine()
    assert progress == ["before"]  # engine is parked
    rv.release()
    t.join(5)
    assert progress == ["before", "after"]


def test_rendezvous_times_out_without_engine():
    rv = Rendezvous(timeout=0.1)
    with pytest.raises(TimeoutError):
        rv.wait_engine()
