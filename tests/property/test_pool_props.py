"""Property-based tests: buffer-pool replacement invariants (issue 8).

Random interleavings of demand fetches, scan fetches, prefetches, pins,
dirtying, and new-page allocations against pools of varying shard/ring
geometry must never (a) evict a pinned frame, (b) exceed total or
per-shard capacity, or (c) let a scan through an enabled ring change a
pure-OLTP workload's hit pattern.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.counters import Counters
from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.page import Page

PAGE_IDS = list(range(1, 61))

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["fetch", "scan", "prefetch", "pin", "new"]),
        st.sampled_from(PAGE_IDS),
        st.booleans(),  # dirty-on-unpin for fetch/pin ops
    ),
    min_size=1,
    max_size=120,
)

geometry = st.tuples(
    st.sampled_from([8, 16, 24, 32]),   # capacity
    st.sampled_from([1, 2, 3]),          # shards
    st.sampled_from([0, 2, 5]),          # ring frames
)


def _make_pool(capacity: int, shards: int, ring: int) -> BufferPool:
    counters = Counters()
    disk = Disk(counters=counters)
    for pid in PAGE_IDS:
        disk.write(pid, Page(pid, disk.page_size).to_bytes())
    pool = BufferPool(
        disk, capacity=capacity, counters=counters,
        shards=shards, ring_frames=ring,
    )
    return pool


@given(ops=op_strategy, geom=geometry)
@settings(max_examples=120, deadline=None)
def test_pins_capacity_and_shard_quotas_hold(ops, geom):
    capacity, shards, ring = geom
    if capacity // shards < 8:
        shards = 1
    pool = _make_pool(capacity, shards, ring)
    pinned: dict[int, int] = {}
    try:
        for op, pid, dirty in ops:
            if op == "fetch":
                pool.fetch(pid)
                pool.unpin(pid, dirty=dirty)
            elif op == "scan":
                pool.fetch(pid, scan=True)
                pool.unpin(pid, dirty=dirty)
            elif op == "prefetch":
                pool.prefetch(pid, scan=dirty)
            elif op == "pin":
                # Hold a pin across later operations (bounded so the pool
                # cannot legitimately exhaust: < 8 frames pinned at once).
                if len(pinned) < 7 and pid not in pinned:
                    pool.fetch(pid)
                    pinned[pid] = 1
            elif op == "new":
                target = pid + 100  # fresh ids, never pinned elsewhere
                if not pool.is_resident(target):
                    pool.new_page(target, scan=dirty)
                    pool.unpin(target, dirty=True)

            # Invariant: a pinned page is always resident.
            for held in pinned:
                assert pool.is_resident(held), f"pinned {held} evicted"
                assert pool.pin_count(held) >= 1
            # Invariant: capacity bounds hold globally and per shard.
            total = 0
            for shard in pool._shards:
                resident = shard.resident()
                assert resident <= shard.capacity
                total += resident
            assert total <= capacity
    finally:
        for held in pinned:
            pool.unpin(held)
    # Everything still flushes and survives a reread.
    pool.flush_all()


@given(
    hot=st.lists(
        st.sampled_from(PAGE_IDS[:12]), min_size=5, max_size=60
    ),
    scan_pages=st.lists(
        st.sampled_from(PAGE_IDS[20:]), min_size=0, max_size=60
    ),
)
@settings(max_examples=80, deadline=None)
def test_oltp_hit_pattern_unchanged_by_scan_with_ring(hot, scan_pages):
    # Run the OLTP sequence alone, then the same sequence with a synthetic
    # scan interleaved after every op, through a ring-enabled pool big
    # enough for the OLTP working set.  The demand hit/miss totals must
    # be identical: the ring absorbed the scan completely.
    def run(with_scan: bool) -> tuple[int, int]:
        pool = _make_pool(capacity=16, shards=1, ring=4)
        scans = iter(scan_pages if with_scan else [])
        for pid in hot:
            pool.fetch(pid)
            pool.unpin(pid)
            nxt = next(scans, None)
            if nxt is not None:
                pool.fetch(nxt, scan=True)
                pool.unpin(nxt)
        snap = pool.counters.snapshot()
        return snap["pool_demand_hits"], snap["pool_demand_misses"]

    assert run(False) == run(True)
