"""Property-based tests: the B+-tree against a model (sorted set) under
random operation sequences, with the structural verifier as the oracle."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.errors import DuplicateKeyError, KeyNotFoundError
from tests.conftest import intkey

# Operations: (op, key ordinal).  A small key universe maximizes collisions
# (duplicates, deletes of absent keys, immediate re-inserts).
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "lookup"]),
        st.integers(min_value=0, max_value=400),
    ),
    max_size=250,
)


def apply_ops(index, ops):
    model: set[int] = set()
    for op, k in ops:
        key = intkey(k)
        if op == "insert":
            if k in model:
                with pytest.raises(DuplicateKeyError):
                    index.insert(key, k)
            else:
                index.insert(key, k)
                model.add(k)
        elif op == "delete":
            if k in model:
                index.delete(key, k)
                model.discard(k)
            else:
                with pytest.raises(KeyNotFoundError):
                    index.delete(key, k)
        else:
            assert index.contains(key, k) == (k in model)
    return model


@given(ops=ops_strategy)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_tree_matches_model(ops):
    engine = Engine(buffer_capacity=512)
    index = engine.create_index(key_len=4)
    model = apply_ops(index, ops)
    got = {int.from_bytes(k, "big") for k, _ in index.contents()}
    assert got == model
    stats = index.verify()
    assert stats.rows == len(model)


@given(ops=ops_strategy, seed=st.integers(0, 2**16))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_rebuild_after_random_ops_preserves_everything(ops, seed):
    from repro import OnlineRebuild, RebuildConfig

    engine = Engine(buffer_capacity=512)
    index = engine.create_index(key_len=4)
    apply_ops(index, ops)
    before = index.contents()
    OnlineRebuild(
        index, RebuildConfig(ntasize=4, xactsize=8, chunk_size=8)
    ).run()
    assert index.contents() == before
    index.verify()


@given(ops=ops_strategy)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_crash_recovery_after_random_ops(ops):
    engine = Engine(buffer_capacity=512)
    index = engine.create_index(key_len=4)
    model = apply_ops(index, ops)
    engine.crash()
    engine.recover()
    index = engine.index(1)
    got = {int.from_bytes(k, "big") for k, _ in index.contents()}
    assert got == model
    index.verify()
