"""Property-based tests for the integrity scrubber.

The two properties the scrubber must uphold to be safe to leave running
in production:

* **false-positive freedom** — against an arbitrary healthy index, and
  against concurrent writers splitting and shrinking leaves under the
  walk, a pass reports zero defects and installs zero quarantines;
* **non-blocking** — writers make progress (every operation completes,
  none deadlocks or times out) while the scrubber loops.
"""

import random
import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.core.scrubber import ScrubConfig, Scrubber
from tests.conftest import intkey


@st.composite
def tree_state(draw):
    count = draw(st.integers(min_value=0, max_value=1500))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    delete_stride = draw(st.sampled_from([0, 2, 3, 5]))
    return count, seed, delete_stride


def build(state):
    count, seed, stride = state
    engine = Engine(buffer_capacity=1024)
    index = engine.create_index(key_len=4)
    order = list(range(count))
    random.Random(seed).shuffle(order)
    for k in order:
        index.insert(intkey(k), k)
    if stride:
        for k in range(0, count, stride):
            index.delete(intkey(k), k)
    return engine, index


@given(state=tree_state())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_healthy_index_scrubs_clean(state):
    """Zero false positives on any quiescent healthy index shape."""
    engine, index = build(state)
    report = Scrubber(index).run_pass()
    assert report.complete
    assert report.clean, [d.problems for d in report.defects]
    assert engine.quarantine.ranges(index.index_id) == []
    assert engine.counters.scrub_quarantines == 0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=400, max_value=1000),
)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scrub_under_random_writers_no_false_positives(seed, count):
    """Scrubbing concurrent with random insert/delete traffic: no false
    positives, no quarantines, and no writer ever blocks on the scrub."""
    engine, index = build((count, seed, 2))
    stop = threading.Event()
    failures: list[BaseException] = []
    ops_done = [0]

    def writer(ordinal: int) -> None:
        # Each writer churns its own disjoint key stripe above the
        # built key space, so inserts/deletes never collide.
        rnd = random.Random(seed * 100 + ordinal)
        base = count * (ordinal + 1)
        present: set[int] = set()
        try:
            while not stop.is_set():
                k = base + rnd.randrange(0, count)
                if k in present:
                    index.delete(intkey(k), k)
                    present.discard(k)
                else:
                    index.insert(intkey(k), k)
                    present.add(k)
                ops_done[0] += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=writer, args=(i,), daemon=True)
        for i in range(2)
    ]
    for t in threads:
        t.start()
    scrubber = Scrubber(index, config=ScrubConfig(repair=False))
    reports = [scrubber.run_pass() for _ in range(3)]
    stop.set()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "writer stuck"
    assert not failures, failures
    assert ops_done[0] > 0, "writers made no progress under the scrub"
    for report in reports:
        assert report.clean, [d.problems for d in report.defects]
    assert engine.quarantine.ranges(index.index_id) == []
    # The tree is intact after the storm.
    index.verify()
