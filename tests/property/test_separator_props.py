"""Property-based tests for suffix compression (the §6.4 prerequisite)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import keys as K

byte_strings = st.binary(min_size=0, max_size=48)


@st.composite
def ordered_pair(draw):
    a = draw(byte_strings)
    b = draw(byte_strings)
    if a == b:
        b = a + b"\x01"
    return (a, b) if a < b else (b, a)


@given(ordered_pair())
@settings(max_examples=300)
def test_separator_partitions_correctly(pair):
    left, right = pair
    s = K.separator(left, right)
    assert left < s <= right


@given(ordered_pair())
@settings(max_examples=300)
def test_separator_is_shortest(pair):
    left, right = pair
    s = K.separator(left, right)
    # Every strictly shorter prefix of right fails to exceed left.
    for cut in range(len(s)):
        assert not left < right[:cut] or not right[:cut] <= right


@given(ordered_pair())
@settings(max_examples=300)
def test_separator_is_prefix_of_right(pair):
    left, right = pair
    s = K.separator(left, right)
    assert right.startswith(s)


@given(st.integers(min_value=0, max_value=2**47 - 1))
def test_rowid_roundtrip_property(rid):
    assert K.decode_rowid(K.encode_rowid(rid)) == rid


@given(
    st.binary(min_size=4, max_size=4),
    st.binary(min_size=4, max_size=4),
    st.integers(min_value=0, max_value=2**40),
    st.integers(min_value=0, max_value=2**40),
)
def test_unit_order_matches_tuple_order(k1, k2, r1, r2):
    u1 = K.leaf_unit(k1, r1, 4)
    u2 = K.leaf_unit(k2, r2, 4)
    assert (u1 < u2) == ((k1, r1) < (k2, r2))
