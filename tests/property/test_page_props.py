"""Property-based tests: page serialization and log-record round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.page import HEADER_SIZE, Page, PageFlag, PageType
from repro.wal.records import ChainLink, KeyCopyEntry, LogRecord, RecordType

rows_strategy = st.lists(st.binary(min_size=0, max_size=60), max_size=25)


@given(
    rows=rows_strategy,
    page_type=st.sampled_from(list(PageType)),
    level=st.integers(min_value=0, max_value=10),
    prev=st.integers(min_value=0, max_value=2**31),
    nxt=st.integers(min_value=0, max_value=2**31),
    lsn=st.integers(min_value=0, max_value=2**60),
    flags=st.sampled_from(
        [PageFlag.NONE, PageFlag.SPLIT, PageFlag.SHRINK,
         PageFlag.SPLIT | PageFlag.OLDPGOFSPLIT]
    ),
    side=st.tuples(st.binary(max_size=20), st.integers(0, 2**31)),
)
@settings(max_examples=200)
def test_page_roundtrip(rows, page_type, level, prev, nxt, lsn, flags, side):
    page = Page(17)
    page.page_type = page_type
    page.level = level
    page.prev_page = prev
    page.next_page = nxt
    page.page_lsn = lsn
    page.flags = flags
    side_key, side_page = side
    page.side_key = side_key
    page.side_page = side_page
    for row in rows:
        if page.fits(row):
            page.append_row(row)
    back = Page.from_bytes(page.to_bytes())
    assert back.rows == page.rows
    assert back.page_type is page.page_type
    assert back.level == level
    assert back.prev_page == prev
    assert back.next_page == nxt
    assert back.page_lsn == lsn
    assert back.flags == flags
    assert back.side_key == side_key
    assert back.side_page == side_page
    assert back.used_bytes == page.used_bytes


@given(rows=rows_strategy)
@settings(max_examples=200)
def test_page_size_accounting_invariant(rows):
    page = Page(1)
    for row in rows:
        if page.fits(row):
            page.append_row(row)
    assert page.used_bytes + page.free_bytes == page.page_size
    assert page.used_bytes >= HEADER_SIZE
    assert len(page.to_bytes()) == page.page_size


record_strategy = st.one_of(
    st.builds(
        LogRecord,
        type=st.just(RecordType.INSERT),
        page_id=st.integers(0, 2**31),
        pos=st.integers(0, 2**15),
        rows=st.lists(st.binary(max_size=50), min_size=1, max_size=1),
        old_ts=st.integers(0, 2**60),
    ),
    st.builds(
        LogRecord,
        type=st.sampled_from([RecordType.BATCHINSERT, RecordType.BATCHDELETE]),
        page_id=st.integers(0, 2**31),
        pos=st.integers(0, 2**15),
        rows=st.lists(st.binary(max_size=50), max_size=10),
    ),
    st.builds(
        LogRecord,
        type=st.just(RecordType.KEYCOPY),
        pp_page=st.integers(0, 2**31),
        pp_old_next=st.integers(0, 2**31),
        pp_new_next=st.integers(0, 2**31),
        entries=st.lists(
            st.builds(
                KeyCopyEntry,
                src_page=st.integers(0, 2**31),
                tgt_page=st.integers(0, 2**31),
                first_pos=st.integers(0, 2**15),
                last_pos=st.integers(0, 2**15),
            ),
            max_size=8,
        ),
        target_ts=st.lists(
            st.tuples(st.integers(0, 2**31), st.integers(0, 2**60)),
            max_size=8,
        ),
        links=st.lists(
            st.builds(
                ChainLink,
                page_id=st.integers(0, 2**31),
                prev_page=st.integers(0, 2**31),
                next_page=st.integers(0, 2**31),
            ),
            max_size=8,
        ),
    ),
    st.builds(
        LogRecord,
        type=st.just(RecordType.DEALLOC),
        page_id=st.integers(1, 2**31),
        page_ids=st.lists(st.integers(1, 2**31), min_size=1, max_size=40),
    ),
    st.builds(
        LogRecord,
        type=st.just(RecordType.ALLOCRUN),
        page_type=st.integers(0, 2),
        level=st.integers(0, 8),
        prev_page=st.integers(0, 2**31),
        next_page=st.integers(0, 2**31),
        page_ids=st.lists(st.integers(1, 2**31), min_size=1, max_size=40),
    ),
)


@given(rec=record_strategy, lsn=st.integers(1, 2**40), txn=st.integers(1, 2**31))
@settings(max_examples=300)
def test_log_record_roundtrip(rec, lsn, txn):
    rec.lsn = lsn
    rec.txn_id = txn
    back = LogRecord.decode(rec.encode())
    assert back.type is rec.type
    assert back.lsn == lsn
    assert back.txn_id == txn
    assert back.rows == rec.rows
    assert back.entries == rec.entries
    assert back.target_ts == rec.target_ts
    assert back.links == rec.links
    if rec.type in (RecordType.DEALLOC, RecordType.ALLOCRUN):
        assert back.page_ids == (rec.page_ids or [rec.page_id])


# Arbitrary mutation sequences: the incremental ``_used`` cache must track
# the O(n) recount exactly through every mutator, and the page must still
# serialize/round-trip afterwards.

mutation_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert", "append", "delete", "delete_range", "replace",
             "side", "clear_side", "blocked", "clear_blocked"]
        ),
        st.integers(min_value=0, max_value=2**31),
        st.binary(max_size=40),
        st.binary(max_size=40),
    ),
    max_size=60,
)


@given(ops=mutation_strategy)
@settings(max_examples=200)
def test_used_cache_tracks_recount_under_mutations(ops):
    from repro.errors import PageFullError

    page = Page(3)
    for op, n, data, data2 in ops:
        try:
            if op == "insert":
                page.insert_row(n % (page.nrows + 1), data)
            elif op == "append":
                page.append_row(data)
            elif op == "delete" and page.nrows:
                page.delete_row(n % page.nrows)
            elif op == "delete_range" and page.nrows:
                lo = n % page.nrows
                page.delete_rows(lo, min(page.nrows, lo + 3))
            elif op == "replace" and page.nrows:
                page.replace_row(n % page.nrows, data)
            elif op == "side":
                page.set_flag(PageFlag.OLDPGOFSPLIT)
                page.set_side_entry(data, n)
            elif op == "clear_side":
                page.clear_side_entry()
            elif op == "blocked":
                page.clear_side_entry()
                page.set_flag(PageFlag.SHRINK | PageFlag.SHRINKRANGE)
                page.set_blocked_range(data, data2)
            elif op == "clear_blocked":
                page.clear_blocked_range()
        except PageFullError:
            pass
        assert page._used == page._recompute_used()
    assert len(page.to_bytes()) == page.page_size
    back = Page.from_bytes(page.to_bytes())
    assert back.rows == page.rows
    assert back.used_bytes == page.used_bytes
    assert back._used == back._recompute_used()
