"""Property-based tests for the rebuild over random tree states and
configurations (DESIGN.md invariants 4, 5, 6)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine, OnlineRebuild, RebuildConfig
from repro.storage.page_manager import PageState
from tests.conftest import intkey


@st.composite
def tree_state(draw):
    """A random populated-then-thinned index description."""
    count = draw(st.integers(min_value=0, max_value=1200))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    delete_stride = draw(st.sampled_from([0, 2, 3, 5]))
    return count, seed, delete_stride


@st.composite
def rebuild_config(draw):
    ntasize = draw(st.sampled_from([1, 2, 3, 8, 32]))
    xact_mult = draw(st.sampled_from([1, 2, 4]))
    fillfactor = draw(st.sampled_from([0.5, 0.8, 1.0]))
    return RebuildConfig(
        ntasize=ntasize,
        xactsize=ntasize * xact_mult,
        fillfactor=fillfactor,
        chunk_size=8,
    )


def build(state):
    count, seed, stride = state
    import random

    engine = Engine(buffer_capacity=1024)
    index = engine.create_index(key_len=4)
    order = list(range(count))
    random.Random(seed).shuffle(order)
    for k in order:
        index.insert(intkey(k), k)
    if stride:
        for k in range(0, count, stride):
            index.delete(intkey(k), k)
    return engine, index


@given(state=tree_state(), config=rebuild_config())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_rebuild_invariants(state, config):
    engine, index = build(state)
    before = index.contents()
    report = OnlineRebuild(index, config).run()

    # Invariant 4: exact multiset of (key, rowid) pairs preserved.
    assert index.contents() == before
    # Invariants 1-3: structure checks.
    stats = index.verify()
    # Invariant 5: every new leaf except possibly the last honors the
    # fillfactor (checked as: mean fill within a tolerance below it, and
    # no page overfull relative to 100%).
    if report.leaf_pages_rebuilt >= 3 and stats.leaf_pages >= 3:
        assert stats.leaf_fill <= 1.0
        ids = stats.leaf_page_ids
        fills = []
        for pid in ids[:-1]:
            page = engine.ctx.buffer.fetch(pid)
            fills.append(page.fill_fraction())
            engine.ctx.buffer.unpin(pid)
        # All but the final page of each transaction batch are packed to
        # the fillfactor; allow one row of slack.
        packed = [f for f in fills if f >= config.fillfactor - 0.05]
        assert len(packed) >= len(fills) - max(1, report.transactions)
    # Invariant 6: no page left deallocated.
    assert engine.ctx.page_manager.deallocated_pages() == []
    # No protocol state left behind.
    assert engine.ctx.locks._table == {}


@given(state=tree_state())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_rebuild_then_crash_recovery(state):
    engine, index = build(state)
    OnlineRebuild(
        index, RebuildConfig(ntasize=8, xactsize=16, chunk_size=8)
    ).run()
    before = index.contents()
    engine.crash()
    engine.recover()
    index = engine.index(1)
    assert index.contents() == before
    index.verify()


@given(
    state=tree_state(),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 1200)), max_size=60
    ),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_tree_fully_usable_after_rebuild(state, ops):
    from repro.errors import DuplicateKeyError, KeyNotFoundError

    engine, index = build(state)
    OnlineRebuild(
        index, RebuildConfig(ntasize=8, xactsize=16, chunk_size=8)
    ).run()
    for is_insert, k in ops:
        try:
            if is_insert:
                index.insert(intkey(k), k)
            else:
                index.delete(intkey(k), k)
        except (DuplicateKeyError, KeyNotFoundError):
            pass
    index.verify()
