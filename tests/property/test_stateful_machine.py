"""A hypothesis rule-based state machine driving the whole engine:
inserts, deletes, scans, rebuild slices, checkpoints, crashes — with a
plain dict as the model and the structural verifier as the invariant."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import Engine, OnlineRebuild, RebuildConfig
from repro.errors import DuplicateKeyError, KeyNotFoundError
from tests.conftest import intkey

KEYS = st.integers(min_value=0, max_value=250)


class EngineMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.engine = Engine(buffer_capacity=256)
        self.index = self.engine.create_index(key_len=4)
        self.model: dict[int, bytes] = {}
        self.ops_since_verify = 0

    # ------------------------------------------------------------- mutations

    @rule(k=KEYS, payload=st.binary(max_size=30))
    def insert(self, k: int, payload: bytes) -> None:
        if k in self.model:
            try:
                self.index.insert(intkey(k), k, payload=payload)
                raise AssertionError("duplicate accepted")
            except DuplicateKeyError:
                pass
        else:
            self.index.insert(intkey(k), k, payload=payload)
            self.model[k] = payload

    @rule(k=KEYS)
    def delete(self, k: int) -> None:
        if k in self.model:
            self.index.delete(intkey(k), k)
            del self.model[k]
        else:
            try:
                self.index.delete(intkey(k), k)
                raise AssertionError("phantom delete succeeded")
            except KeyNotFoundError:
                pass

    # ----------------------------------------------------------- maintenance

    @rule(nta=st.sampled_from([1, 2, 4]))
    def rebuild(self, nta: int) -> None:
        OnlineRebuild(
            self.index,
            RebuildConfig(ntasize=nta, xactsize=nta * 2, chunk_size=8),
        ).run()

    @rule()
    def rebuild_slice(self) -> None:
        OnlineRebuild(
            self.index, RebuildConfig(ntasize=2, xactsize=2, chunk_size=8)
        ).run(max_pages=2)

    @rule(truncate=st.booleans())
    def checkpoint(self, truncate: bool) -> None:
        self.engine.checkpoint(truncate=truncate)

    @rule()
    def crash_and_recover(self) -> None:
        self.engine.crash()
        self.engine.recover()
        self.index = self.engine.index(1)

    # -------------------------------------------------------------- queries

    @rule(k=KEYS)
    def point_read(self, k: int) -> None:
        got = self.index.get(intkey(k), k)
        assert got == self.model.get(k)

    @rule(lo=KEYS, hi=KEYS)
    def range_read(self, lo: int, hi: int) -> None:
        lo, hi = min(lo, hi), max(lo, hi)
        got = [
            int.from_bytes(key, "big")
            for key, _ in self.index.scan(intkey(lo), intkey(hi))
        ]
        assert got == sorted(k for k in self.model if lo <= k <= hi)

    # ------------------------------------------------------------ invariants

    @invariant()
    def contents_match_model(self) -> None:
        # A full structural verify every step would dominate runtime; the
        # cheap content check runs always, verify() every few operations.
        self.ops_since_verify += 1
        if self.ops_since_verify >= 10:
            self.ops_since_verify = 0
            stats = self.index.verify()
            assert stats.rows == len(self.model)


EngineMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=40, deadline=None
)
TestEngineMachine = EngineMachine.TestCase
