"""Crash-schedule sweep: every syncpoint crash and every injected-fault
site across build → fragment → rebuild, with recovery verified after each.

The quick test strides through the enumerated schedules so the tier-1 run
stays fast; the exhaustive sweep (every schedule, plus re-running the
rebuild to completion after each recovery) is marked ``slow`` and runs in
the dedicated CI job.  ``REPRO_FAULT_SEED`` gates a randomized smoke test
whose seed is printed on failure for replay.
"""

import os

import pytest

from repro.testing import CrashScheduleHarness, ScrubCrashHarness
from repro.testing.crashsched import run_random_schedule


def _fail_report(report) -> str:
    lines = [f"{len(report.failures)} schedule(s) failed:"]
    lines.extend(f"  {failure}" for failure in report.failures)
    return "\n".join(lines)


def test_quick_sweep_strided():
    harness = CrashScheduleHarness(key_count=2000, seed=11)
    report = harness.run_sweep(stride=4)
    assert report.schedules_run > 0
    assert report.ok, _fail_report(report)


@pytest.mark.slow
def test_exhaustive_sweep_all_schedules():
    harness = CrashScheduleHarness(key_count=2000, seed=11)
    report = harness.run_sweep()
    assert report.schedules_run >= 30, "schedule enumeration shrank"
    assert report.crashes_simulated > 0
    assert report.ok, _fail_report(report)


@pytest.mark.slow
def test_exhaustive_sweep_rebuild_finishes_after_recovery():
    """Recovery is not just consistent — the rebuild is restartable: after
    every crash schedule, a fresh rebuild runs to completion and verifies."""
    harness = CrashScheduleHarness(
        key_count=2000, seed=11, finish_after_recovery=True
    )
    report = harness.run_sweep(stride=2)
    assert report.ok, _fail_report(report)


@pytest.mark.skipif(
    "REPRO_FAULT_SEED" not in os.environ,
    reason="randomized smoke runs only when REPRO_FAULT_SEED is set",
)
def test_randomized_schedule_smoke():
    seed = int(os.environ["REPRO_FAULT_SEED"])
    outcome = run_random_schedule(seed)
    assert outcome.ok, (
        f"random schedule failed (replay with REPRO_FAULT_SEED={seed}): "
        f"{outcome.schedule}: {outcome.error}"
    )


# ------------------------------------------------------- parallel rebuild


def test_parallel_quick_sweep_partition_points():
    """Crash the 2-worker partitioned rebuild at every
    ``rebuild.partition.*`` syncpoint (plan, worker start, seam release,
    worker done, merge): each crash must recover to exactly the committed
    key set.  This is the seam-handoff protocol's power-failure coverage."""
    harness = CrashScheduleHarness(key_count=2000, seed=11, parallel_workers=2)
    schedules = [
        s
        for s in harness.enumerate_schedules(include_faults=False)
        if s.point is not None and s.point.startswith("rebuild.partition.")
    ]
    assert len(schedules) >= 8, "partition syncpoint enumeration shrank"
    report = harness.run_sweep(schedules=schedules)
    assert report.crashes_simulated == report.schedules_run
    assert report.ok, _fail_report(report)


@pytest.mark.slow
def test_parallel_exhaustive_sweep_all_schedules():
    """Every enumerated schedule — copy/propagation syncpoints and disk
    faults included — against the 2-worker driver.  A crash in one worker
    must never strand a peer (the pool-stop protocol) or lose a committed
    transaction from any worker."""
    harness = CrashScheduleHarness(key_count=2000, seed=11, parallel_workers=2)
    report = harness.run_sweep()
    assert report.schedules_run >= 30, "schedule enumeration shrank"
    assert report.crashes_simulated > 0
    assert report.ok, _fail_report(report)


@pytest.mark.slow
def test_parallel_sweep_rebuild_finishes_after_recovery():
    """After every partition-point crash, a fresh (still parallel) rebuild
    runs to completion and verifies — restartability holds regardless of
    which worker died."""
    harness = CrashScheduleHarness(
        key_count=2000, seed=11, parallel_workers=2,
        finish_after_recovery=True,
    )
    schedules = [
        s
        for s in harness.enumerate_schedules(include_faults=False)
        if s.point is not None and s.point.startswith("rebuild.partition.")
    ]
    report = harness.run_sweep(schedules=schedules)
    assert report.ok, _fail_report(report)


# ------------------------------------------------------ resumable rebuild


def test_resume_sweep_strided():
    """Crash → recover → *resume* (not restart): the supervised follow-up
    rebuild starts from the recovered ``REBUILD_PROGRESS`` checkpoint and
    must never re-copy a unit at or below the durable floor."""
    harness = CrashScheduleHarness(
        key_count=2000, seed=11, resume_after_recovery=True
    )
    schedules = harness.enumerate_schedules(include_faults=False)
    report = harness.run_sweep(schedules=schedules, stride=3)
    assert report.schedules_run > 0
    assert report.ok, _fail_report(report)
    assert report.resumes_taken > 0, (
        "no schedule produced a durable checkpoint — resume path untested"
    )


@pytest.mark.slow
def test_exhaustive_resume_sweep_all_schedules():
    """Every syncpoint crash and every injected-fault site, each followed
    by a supervised resume asserting the no-repaid-work guarantee."""
    harness = CrashScheduleHarness(
        key_count=2000, seed=11, resume_after_recovery=True
    )
    report = harness.run_sweep()
    assert report.schedules_run >= 30, "schedule enumeration shrank"
    assert report.ok, _fail_report(report)
    assert report.resumes_taken > 0


@pytest.mark.slow
def test_parallel_exhaustive_resume_sweep():
    """The 2-worker driver, crashed at every syncpoint, then resumed in
    parallel from the reconstructed per-partition segments."""
    harness = CrashScheduleHarness(
        key_count=2000, seed=11, parallel_workers=2,
        resume_after_recovery=True,
    )
    report = harness.run_sweep(
        schedules=harness.enumerate_schedules(include_faults=False)
    )
    assert report.ok, _fail_report(report)
    assert report.resumes_taken > 0


# --------------------------------------------------------- scrubber crashes


def _fail_scrub_report(report) -> str:
    lines = [f"{len(report.failures)} scrub schedule(s) failed:"]
    lines.extend(f"  {failure}" for failure in report.failures)
    return "\n".join(lines)


def test_scrub_crash_sweep_all_points():
    """Crash the detect → quarantine → targeted-rebuild → lift ladder at
    every ``scrub.*`` syncpoint.  After each crash, recovery must either
    reconstruct the fence from a durable QUARANTINE record or drop it
    safely, no reader may ever see a raw ChecksumError, and a follow-up
    pass must converge (range healed, or fenced with everything outside
    it intact)."""
    harness = ScrubCrashHarness(key_count=1200, seed=13)
    report = harness.run_sweep()
    assert report.schedules_run >= 6, "scrub syncpoint enumeration shrank"
    assert report.crashes_simulated == report.schedules_run
    assert report.ok, _fail_scrub_report(report)
    # Both recovery behaviors must actually be exercised by the sweep:
    # fences reconstructed from durable SETs, and post-repair crashes
    # that heal on the follow-up pass.
    assert report.refences_seen > 0, "no schedule re-fenced after recovery"
    assert report.heals > 0, "no schedule healed after recovery"


@pytest.mark.skipif(
    "REPRO_FAULT_SEED" not in os.environ,
    reason="randomized smoke runs only when REPRO_FAULT_SEED is set",
)
def test_randomized_resume_schedule_smoke():
    seed = int(os.environ["REPRO_FAULT_SEED"])
    outcome = run_random_schedule(seed, resume_after_recovery=True)
    assert outcome.ok, (
        f"random resume schedule failed (replay with REPRO_FAULT_SEED="
        f"{seed}): {outcome.schedule}: {outcome.error}"
    )
