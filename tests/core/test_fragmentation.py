"""Fragmentation advisor tests (repro.stats.fragmentation)."""

from repro import OnlineRebuild, RebuildConfig
from repro.stats import analyze_index
from tests.conftest import fill_index, intkey, make_half_empty


def test_fresh_packed_index_not_recommended(engine):
    from repro.workload import bulk_load, keys_for_config

    keys, klen = keys_for_config("int4", 10000)
    index = bulk_load(engine, keys, klen, fill=1.0)
    report = analyze_index(index)
    assert not report.should_rebuild
    assert report.utilization > 0.9
    assert report.declustering < 1.5
    assert "would not help" in report.reason


def test_half_empty_index_recommended(index):
    make_half_empty(index, 3000)
    report = analyze_index(index)
    assert report.should_rebuild
    assert "utilization" in report.reason
    assert report.estimated_savings_fraction > 0.3


def test_declustered_index_recommended(engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 6000, seed=5)  # random order: scattered pages
    report = analyze_index(index, utilization_threshold=0.2)
    assert report.should_rebuild
    assert "declustering" in report.reason


def test_estimates_match_actual_rebuild(index):
    make_half_empty(index, 3000)
    report = analyze_index(index, fillfactor=1.0)
    OnlineRebuild(index, RebuildConfig(ntasize=16, xactsize=64)).run()
    actual = index.verify().leaf_pages
    assert abs(actual - report.estimated_pages_after) <= max(
        2, report.estimated_pages_after // 10
    )


def test_rows_and_pages_counted(index):
    fill_index(index, 500)
    report = analyze_index(index)
    assert report.rows == 500
    assert report.leaf_pages == index.verify().leaf_pages


def test_empty_index(index):
    report = analyze_index(index)
    assert report.leaf_pages == 1
    assert report.rows == 0
    assert not report.should_rebuild


def test_thresholds_configurable(index):
    make_half_empty(index, 2000)
    strict = analyze_index(index, utilization_threshold=0.99)
    lax = analyze_index(
        index, utilization_threshold=0.01, declustering_threshold=1e9
    )
    assert strict.should_rebuild
    assert not lax.should_rebuild
