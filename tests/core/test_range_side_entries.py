"""§6.2 first enhancement: delete-range side entries on SHRINK-bitted
propagation pages — traversals outside the deleted key range pass."""

import threading

import pytest

from repro import Engine, OnlineRebuild, RebuildConfig
from repro.concurrency.syncpoints import Rendezvous
from repro.storage.page import Page, PageFlag
from tests.conftest import contents_as_ints, intkey, make_half_empty


def test_blocks_unit_semantics():
    page = Page(1)
    # Plain SHRINK blocks everything.
    page.set_flag(PageFlag.SHRINK)
    assert page.blocks_unit(b"anything")
    # With a published range only the range blocks.
    page.set_blocked_range(b"m", b"t")
    page.set_flag(PageFlag.SHRINKRANGE)
    assert not page.blocks_unit(b"a")
    assert page.blocks_unit(b"m")
    assert page.blocks_unit(b"s")
    assert not page.blocks_unit(b"t")
    assert not page.blocks_unit(b"z")
    # Empty bounds are infinities.
    page.set_blocked_range(b"", b"t")
    assert page.blocks_unit(b"a")
    page.set_blocked_range(b"m", b"")
    assert page.blocks_unit(b"z")
    assert not page.blocks_unit(b"a")
    # Clearing restores full blocking.
    page.clear_blocked_range()
    assert page.blocks_unit(b"a")
    # And without SHRINK nothing blocks.
    page.clear_flag(PageFlag.SHRINK)
    assert not page.blocks_unit(b"a")


def test_blocked_range_serializes():
    page = Page(5)
    page.set_blocked_range(b"lo-key", b"hi-key")
    page.set_flag(PageFlag.SHRINK)
    page.set_flag(PageFlag.SHRINKRANGE)
    back = Page.from_bytes(page.to_bytes())
    assert back.blocked_lo == b"lo-key"
    assert back.blocked_hi == b"hi-key"
    assert back.has_flag(PageFlag.SHRINKRANGE)
    assert back.used_bytes == page.used_bytes


def test_rebuild_with_range_side_entries_correct():
    engine = Engine(buffer_capacity=4096)
    index = engine.create_index(key_len=4)
    make_half_empty(index, 4000)
    before = index.contents()
    OnlineRebuild(
        index,
        RebuildConfig(
            ntasize=8, xactsize=32, nonleaf_range_side_entries=True
        ),
    ).run()
    assert index.contents() == before
    index.verify()  # also asserts every bit and range was cleared


def _build_tall(engine):
    """Height-3 tree (level-1 pages below the root, so child-bit checks
    apply to them) at ~half utilization."""
    index = engine.create_index(key_len=4)
    for k in range(0, 100_000, 2):
        index.insert(intkey(k), k)
    for k in range(0, 100_000, 4):
        index.delete(intkey(k), k)
    assert index.height() >= 3
    return index


def _park_rebuild(engine, index, enhancement: bool):
    """Start a rebuild and park it right after its first leaf->level-1
    propagation pass (level-1 bits live, propagation still above)."""
    rv = Rendezvous(timeout=20.0)
    seen = {}

    def park(ctx):
        if ctx.get("level") == 2 and not seen:
            seen["parked"] = True
            rv.engine_arrived(ctx)

    engine.syncpoints.on("rebuild.level_propagated", park)

    def rebuilder():
        OnlineRebuild(
            index,
            RebuildConfig(
                ntasize=16, xactsize=64,
                nonleaf_range_side_entries=enhancement,
            ),
        ).run()

    t = threading.Thread(target=rebuilder, daemon=True)
    t.start()
    rv.wait_engine()
    return rv, t


def _find_bitted_level1(engine, index):
    """The non-root level-1 page the parked rebuild has SHRINK-marked."""
    from repro.btree import node

    for pid in engine.ctx.page_manager.allocated_pages():
        if pid == index.root_page_id:
            continue
        page = engine.ctx.buffer.fetch(pid)
        try:
            if page.level == 1 and page.has_flag(PageFlag.SHRINK):
                return pid, page
        finally:
            engine.ctx.buffer.unpin(pid)
    raise AssertionError("no SHRINK-marked level-1 page found while parked")


def _present_key_at_or_above(raw: bytes) -> int:
    """A key value >= raw[:4] that the workload left present (k % 4 == 2)."""
    base = int.from_bytes(raw[:4].ljust(4, b"\x00"), "big") + 8
    return base - (base % 4) + 2


def test_out_of_range_reader_passes_in_range_blocks():
    """§6.2: with the range side entry, a reader whose key routes through
    the SAME SHRINK-marked level-1 page but outside the deleted range
    proceeds; a key inside the range blocks."""
    from repro.btree import node

    engine = Engine(buffer_capacity=16384, lock_timeout=10.0)
    index = _build_tall(engine)
    rv, t = _park_rebuild(engine, index, enhancement=True)
    try:
        pid, page = _find_bitted_level1(engine, index)
        assert page.has_flag(PageFlag.SHRINKRANGE)
        assert page.blocked_hi, "expected a finite high bound"
        # A present key above the blocked range but still under this page
        # (below its last separator).
        probe = _present_key_at_or_above(page.blocked_hi)
        last_sep = node.entry_key(page.rows[-1])
        assert intkey(probe) < last_sep[:4], "probe escaped the page"

        passed = threading.Event()

        def out_of_range_reader():
            index.contains(intkey(probe), probe)
            passed.set()

        r = threading.Thread(target=out_of_range_reader, daemon=True)
        r.start()
        assert passed.wait(5), (
            "out-of-range reader blocked despite the range side entry"
        )

        blocked = threading.Event()

        def in_range_reader():
            index.contains(intkey(2), 2)  # first key: inside the range
            blocked.set()

        b = threading.Thread(target=in_range_reader, daemon=True)
        b.start()
        in_range_was_blocked = not blocked.wait(0.3)
    finally:
        rv.release()
    t.join(120)
    assert blocked.wait(20)
    assert in_range_was_blocked, "in-range reader was not blocked"
    index.verify()


def test_without_enhancement_same_page_reader_blocks():
    """Control: with the enhancement off, the same out-of-range probe
    blocks on the level-1 SHRINK bit."""
    from repro.btree import node

    engine = Engine(buffer_capacity=16384, lock_timeout=10.0)
    index = _build_tall(engine)
    rv, t = _park_rebuild(engine, index, enhancement=False)
    try:
        pid, page = _find_bitted_level1(engine, index)
        assert not page.has_flag(PageFlag.SHRINKRANGE)
        # Probe a key under this page but far beyond the rebuilt leaves.
        last_sep = node.entry_key(page.rows[-1])
        probe = _present_key_at_or_above(last_sep) - 4000
        probe = probe - (probe % 4) + 2

        blocked = threading.Event()

        def reader():
            index.contains(intkey(probe), probe)
            blocked.set()

        r = threading.Thread(target=reader, daemon=True)
        r.start()
        was_blocked = not blocked.wait(0.3)
    finally:
        rv.release()
    t.join(120)
    assert blocked.wait(20)
    assert was_blocked, "plain SHRINK bit failed to block the reader"
    index.verify()
