"""RebuildConfig validation tests."""

import pytest

from repro.core.config import RebuildConfig
from repro.errors import RebuildError


def test_defaults_match_paper():
    config = RebuildConfig()
    assert config.ntasize == 32          # §6.4: "we chose an ntasize of 32"
    assert config.xactsize >= 100        # §3: "a few hundred pages"
    assert config.fillfactor == 1.0
    assert config.reorganize_level1 is True


def test_rejects_zero_ntasize():
    with pytest.raises(RebuildError):
        RebuildConfig(ntasize=0)


def test_rejects_xactsize_below_ntasize():
    with pytest.raises(RebuildError):
        RebuildConfig(ntasize=32, xactsize=16)


def test_rejects_bad_fillfactor():
    with pytest.raises(RebuildError):
        RebuildConfig(fillfactor=0.0)
    with pytest.raises(RebuildError):
        RebuildConfig(fillfactor=1.5)


def test_rejects_bad_chunk_size():
    with pytest.raises(RebuildError):
        RebuildConfig(chunk_size=0)


def test_frozen():
    config = RebuildConfig()
    with pytest.raises(Exception):
        config.ntasize = 64  # type: ignore[misc]
