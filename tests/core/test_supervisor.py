"""RebuildSupervisor: retry/backoff, watchdog, throttling, degradation."""

import threading
import time

import pytest

from repro import Engine, OnlineRebuild, RebuildConfig
from repro.core.supervisor import (
    RebuildSupervisor,
    SupervisorConfig,
    SupervisorReport,
    _Monitor,
)
from repro.errors import RebuildAbortedError, RebuildError, RebuildWatchdogError
from repro.storage.faults import FaultPlan
from repro.storage.io_scheduler import CompletionToken
from tests.conftest import contents_as_ints, make_half_empty

FAST = SupervisorConfig(retry_backoff=0.001, retry_backoff_cap=0.01)


def _engine(count: int = 2000, **kw):
    engine = Engine(buffer_capacity=2048, **kw)
    index = engine.create_index(key_len=4)
    make_half_empty(index, count)
    return engine, index, contents_as_ints(index)


# -------------------------------------------------------------- happy path


def test_clean_run_is_one_unsupervised_looking_attempt():
    engine, index, expected = _engine()
    report = RebuildSupervisor(
        index, RebuildConfig(ntasize=4, xactsize=8), FAST
    ).run()
    assert report.attempts == 1
    assert report.retries == 0 and report.resumes == 0
    assert not report.gave_up
    assert report.final is not None and report.final.completed
    assert contents_as_ints(index) == expected
    index.verify()
    c = engine.counters
    assert c.supervisor_retries == 0
    assert c.supervisor_gave_up == 0
    assert c.watchdog_trips == 0


# ----------------------------------------------------------- retry / resume


def test_aborted_rebuild_is_retried_and_resumed():
    engine, index, expected = _engine(4000)
    fails = {"left": 1}

    def flaky(_ctx):
        if fails["left"]:
            fails["left"] -= 1
            raise RuntimeError("injected transient failure")

    # Fail on the 3rd top action: the first two committed batches give the
    # failed attempt durable progress the retry must not repay.
    fired = {"n": 0}

    def arm(_ctx):
        fired["n"] += 1
        if fired["n"] == 3:
            flaky(_ctx)

    engine.syncpoints.on("rebuild.nta_end", arm)
    supervisor = RebuildSupervisor(
        index, RebuildConfig(ntasize=4, xactsize=8), FAST
    )
    report = supervisor.run()
    assert report.attempts == 2
    assert report.retries == 1
    assert report.resumes == 1, "retry did not resume from reported progress"
    assert report.final.completed
    assert contents_as_ints(index) == expected
    index.verify()
    assert engine.counters.supervisor_retries == 1
    assert engine.counters.supervisor_resumes == 1


def test_gives_up_after_max_attempts():
    engine, index, expected = _engine()
    engine.syncpoints.on(
        "rebuild.copy_locked",
        lambda _ctx: (_ for _ in ()).throw(RuntimeError("always broken")),
    )
    supervisor = RebuildSupervisor(
        index,
        RebuildConfig(ntasize=4, xactsize=8),
        SupervisorConfig(max_attempts=2, retry_backoff=0.001),
    )
    with pytest.raises(RebuildAbortedError):
        supervisor.run()
    assert engine.counters.supervisor_retries == 1
    assert engine.counters.supervisor_gave_up == 1
    # §4.1.3 all the way down: every aborted attempt left the index whole.
    assert contents_as_ints(index) == expected
    index.verify()


def test_stop_interrupts_retry_backoff():
    engine, index, _ = _engine(1000)
    engine.syncpoints.on(
        "rebuild.copy_locked",
        lambda _ctx: (_ for _ in ()).throw(RuntimeError("always broken")),
    )
    supervisor = RebuildSupervisor(
        index,
        RebuildConfig(ntasize=4, xactsize=8),
        SupervisorConfig(max_attempts=3, retry_backoff=30.0,
                         retry_backoff_cap=30.0),
    )
    result: dict = {}

    def drive():
        try:
            supervisor.run()
        except RebuildError as exc:
            result["error"] = exc

    thread = threading.Thread(target=drive)
    start = time.monotonic()
    thread.start()
    time.sleep(0.3)  # let attempt 1 fail and the 30 s backoff begin
    supervisor.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive(), "stop() did not cut the backoff short"
    assert time.monotonic() - start < 10.0
    assert isinstance(result.get("error"), RebuildAbortedError)


# --------------------------------------------------------------- degradation


def test_attempt_config_degradation_ladder():
    config = RebuildConfig(parallel_workers=4, top_action_sleep=0.0)
    supervisor = RebuildSupervisor.__new__(RebuildSupervisor)
    supervisor.config = config
    supervisor.policy = SupervisorConfig()
    assert supervisor._attempt_config(1) is config
    second = supervisor._attempt_config(2)
    assert second.parallel_workers == 2
    assert second.top_action_sleep == pytest.approx(0.002)
    third = supervisor._attempt_config(3)
    assert third.parallel_workers == 1  # serial fallback
    assert third.top_action_sleep == pytest.approx(0.004)
    assert supervisor._attempt_config(5).parallel_workers == 1


# ------------------------------------------------------------------ watchdog


def _monitor_fixture(count=1000, **config_kw):
    engine, index, _ = _engine(count)
    config = RebuildConfig(**config_kw)
    supervisor = RebuildSupervisor(index, config, SupervisorConfig())
    rebuild = OnlineRebuild(index, config)
    monitor = _Monitor(supervisor, rebuild, SupervisorReport())
    return engine, rebuild, monitor


def test_watchdog_sweep_fails_stale_worker():
    engine, rebuild, monitor = _monitor_fixture(watchdog_timeout=0.05)
    rebuild._beats[0] = time.monotonic() - 1.0
    monitor._sweep()
    assert isinstance(rebuild._poison, RebuildWatchdogError)
    assert engine.counters.watchdog_trips == 1
    assert monitor.report.watchdog_trips == 1
    # One trip per attempt: the sweep does not pile on more poison.
    monitor._sweep()
    assert engine.counters.watchdog_trips == 1


def test_watchdog_sweep_leaves_live_workers_alone():
    engine, rebuild, monitor = _monitor_fixture(watchdog_timeout=60.0)
    rebuild._beats[0] = time.monotonic()
    monitor._sweep()
    assert rebuild._poison is None
    assert engine.counters.watchdog_trips == 0


def test_watchdog_trip_retries_and_completes():
    engine, index, expected = _engine(4000)
    stalled = {"done": False}

    def stall_once(_ctx):
        if not stalled["done"]:
            stalled["done"] = True
            time.sleep(0.6)  # well past watchdog_timeout below

    engine.syncpoints.on("rebuild.txn_committed", stall_once)
    supervisor = RebuildSupervisor(
        index,
        RebuildConfig(ntasize=4, xactsize=8, watchdog_timeout=0.1),
        SupervisorConfig(watchdog_poll=0.02, retry_backoff=0.001),
    )
    report = supervisor.run()
    assert report.watchdog_trips >= 1
    assert report.attempts >= 2
    assert report.final.completed
    assert contents_as_ints(index) == expected
    index.verify()
    assert engine.counters.watchdog_trips >= 1


# ---------------------------------------------------------------- throttling


def test_storm_sweep_throttles_then_decays():
    engine, rebuild, monitor = _monitor_fixture()
    policy = monitor.supervisor.policy
    engine.counters.add("io_retries", policy.storm_retry_threshold + 1)
    monitor._sweep()
    assert rebuild.throttle_sleep == pytest.approx(policy.throttle_step)
    assert engine.counters.supervisor_throttles == 1
    # Another stormy sweep widens further, up to the cap.
    engine.counters.add("io_retries", policy.storm_retry_threshold + 1)
    monitor._sweep()
    assert rebuild.throttle_sleep == pytest.approx(2 * policy.throttle_step)
    # Calm sweeps decay back toward the configured baseline.
    monitor._sweep()
    monitor._sweep()
    assert rebuild.throttle_sleep == pytest.approx(0.0)


def test_latency_budget_breach_throttles():
    engine, index, _ = _engine(1000)

    class Stats:
        def latency_percentiles(self):
            return {"all": {"p50": 1.0, "p95": 20.0, "p99": 80.0}}

    config = RebuildConfig()
    supervisor = RebuildSupervisor(
        index, config,
        SupervisorConfig(storm_retry_threshold=0, latency_budget_ms=50.0),
        oltp_stats=Stats(),
    )
    rebuild = OnlineRebuild(index, config)
    monitor = _Monitor(supervisor, rebuild, SupervisorReport())
    monitor._sweep()
    assert rebuild.throttle_sleep > 0.0
    assert engine.counters.supervisor_throttles == 1


def test_supervised_rebuild_completes_under_transient_storm():
    plan = FaultPlan(
        seed=23,
        transient_read_rate=0.02,
        transient_write_rate=0.02,
        max_rate_faults=150,
    )
    engine = Engine(buffer_capacity=2048, fault_plan=plan, io_retry_limit=20)
    index = engine.create_index(key_len=4)
    make_half_empty(index, 3000)
    expected = contents_as_ints(index)
    supervisor = RebuildSupervisor(
        index,
        RebuildConfig(ntasize=4, xactsize=8, io_retry_limit=20),
        SupervisorConfig(watchdog_poll=0.02, storm_retry_threshold=4,
                         retry_backoff=0.001),
    )
    report = supervisor.run()
    assert report.final.completed and not report.gave_up
    assert contents_as_ints(index) == expected
    index.verify()


# ------------------------------------------------------------ pause / resume


def test_pause_gate_holds_rebuild_between_top_actions():
    engine, index, expected = _engine()
    supervisor = RebuildSupervisor(
        index, RebuildConfig(ntasize=4, xactsize=8), FAST
    )
    paused = threading.Event()
    engine.syncpoints.on("rebuild.paused", lambda _ctx: paused.set())

    def pause_once(_ctx):
        rebuild = supervisor.rebuild
        if rebuild is not None and not paused.is_set():
            rebuild.pause()

    engine.syncpoints.on("rebuild.txn_committed", pause_once)

    def release():
        assert paused.wait(10.0)
        assert supervisor.rebuild.paused
        supervisor.rebuild.unpause()

    releaser = threading.Thread(target=release)
    releaser.start()
    report = supervisor.run()
    releaser.join(timeout=10.0)
    assert paused.is_set(), "rebuild never parked on the pause gate"
    assert report.final.completed
    assert contents_as_ints(index) == expected


# ------------------------------------------------------------- seam deadline


def test_seam_wait_deadline_raises_cleanly():
    engine, index, _ = _engine(1000)
    rebuild = OnlineRebuild(index, RebuildConfig(watchdog_timeout=0.05))
    token = CompletionToken()  # the left neighbor never completes it
    busy_wait = rebuild._seam_wait(token, None)
    deadline = time.monotonic() + 5.0
    with pytest.raises(RebuildError, match="watchdog_timeout"):
        while time.monotonic() < deadline:
            busy_wait()
    assert engine.counters.seam_wait_timeouts == 1


# --------------------------------------------------------------------- knobs


def test_policy_validation():
    with pytest.raises(RebuildError):
        SupervisorConfig(max_attempts=0)
    with pytest.raises(RebuildError):
        SupervisorConfig(watchdog_poll=0.0)
    with pytest.raises(RebuildError):
        SupervisorConfig(retry_backoff=-1.0)


def test_rebuild_config_validation():
    with pytest.raises(Exception):
        RebuildConfig(watchdog_timeout=0.0)
    with pytest.raises(Exception):
        RebuildConfig(top_action_sleep=-0.1)
