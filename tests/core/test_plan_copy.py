"""Unit tests for the copy-phase planner (pure function, §4.1 + §5.2 input)."""

from repro.core.copy_phase import plan_copy
from repro.storage.page import SLOT_OVERHEAD

UNIT = b"u" * 10
COST = SLOT_OVERHEAD + len(UNIT)


def units(n):
    return [UNIT] * n


def test_everything_fits_in_pp():
    targets, allocs = plan_copy(
        [(100, units(5))], pp_free_budget=10 * COST, capacity=1000,
        fillfactor=1.0,
    )
    assert len(targets) == 1
    assert targets[0].ordinal == -1
    assert len(targets[0].units) == 5
    assert allocs == {100: []}


def test_overflow_allocates_new_pages():
    targets, allocs = plan_copy(
        [(100, units(10))], pp_free_budget=3 * COST, capacity=4 * COST,
        fillfactor=1.0,
    )
    # 3 to PP, then pages of 4: 4 + 3.
    assert [t.ordinal for t in targets] == [-1, 0, 1]
    assert [len(t.units) for t in targets] == [3, 4, 3]
    assert allocs == {100: [0, 1]}


def test_no_pp_starts_with_new_page():
    targets, allocs = plan_copy(
        [(100, units(2))], pp_free_budget=0, capacity=1000, fillfactor=1.0
    )
    assert targets[0].ordinal == 0
    assert allocs == {100: [0]}


def test_fillfactor_limits_new_pages():
    targets, _ = plan_copy(
        [(100, units(10))], pp_free_budget=0, capacity=10 * COST,
        fillfactor=0.5,
    )
    # Half-full targets: 5 units each.
    assert [len(t.units) for t in targets] == [5, 5]


def test_allocs_attributed_to_the_source_that_triggered_them():
    targets, allocs = plan_copy(
        [(1, units(3)), (2, units(3)), (3, units(3))],
        pp_free_budget=4 * COST,
        capacity=4 * COST,
        fillfactor=1.0,
    )
    # PP takes src1's 3 + src2's first; src2 triggers page 0; src3 rides
    # along then triggers page 1.
    assert allocs[1] == []
    assert allocs[2] == [0]
    assert allocs[3] == [1]


def test_extents_cover_each_source_exactly_once():
    sources = [(1, units(4)), (2, units(6))]
    targets, _ = plan_copy(
        sources, pp_free_budget=3 * COST, capacity=5 * COST, fillfactor=1.0
    )
    covered = {1: [], 2: []}
    for t in targets:
        for e in t.extents:
            covered[e.src_page].append((e.first_pos, e.last_pos))
    for src_id, rows in sources:
        spans = sorted(covered[src_id])
        positions = [p for lo, hi in spans for p in range(lo, hi + 1)]
        assert positions == list(range(len(rows)))


def test_extents_split_at_target_boundaries():
    targets, _ = plan_copy(
        [(1, units(10))], pp_free_budget=0, capacity=4 * COST, fillfactor=1.0
    )
    assert [t.extents for t in targets][0][0].first_pos == 0
    boundaries = [t.extents[0].first_pos for t in targets]
    assert boundaries == [0, 4, 8]


def test_total_units_preserved():
    sources = [(i, units(7)) for i in range(5)]
    targets, _ = plan_copy(
        sources, pp_free_budget=2 * COST, capacity=6 * COST, fillfactor=0.9
    )
    assert sum(len(t.units) for t in targets) == 35


def test_empty_source_rejected():
    import pytest

    from repro.errors import RebuildError

    with pytest.raises(RebuildError):
        plan_copy([(1, [])], pp_free_budget=0, capacity=1000, fillfactor=1.0)


def test_oversized_unit_still_placed():
    # A unit bigger than the fillfactor budget must still land somewhere
    # (one per page) rather than loop forever.
    big = b"B" * 500
    targets, _ = plan_copy(
        [(1, [big, big])], pp_free_budget=0, capacity=600, fillfactor=0.1
    )
    assert [len(t.units) for t in targets] == [1, 1]
