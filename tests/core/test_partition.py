"""Unit tests for the partition planner (parallel rebuild, issue 6).

The planner's contract: up to ``workers`` contiguous disjoint segments
whose seams are strictly increasing units, the first starting at the
chain head (``start_unit=None``) and the last running to its end
(``stop_before=None``).  The default plan comes from level-1 separators
(no leaf I/O); the exact-packing plan walks the leaves and admits only
packing-exact seams.
"""

from __future__ import annotations

from repro import Engine, RebuildConfig
from repro.core.partition import (
    PartitionPlan,
    _choose_cuts,
    _plan_from_level1,
    plan_partitions,
)
from repro.storage.page import NO_PAGE, PageType
from tests.conftest import intkey, make_half_empty


def _first_leaf(engine: Engine, tree) -> int:
    """Unlatched descent along first children (quiesced tree only)."""
    from repro.btree import node

    pid = tree.root_page_id
    while True:
        page = engine.ctx.buffer.fetch(pid)
        try:
            if page.page_type is not PageType.NONLEAF:
                return pid
            child = node.entry_child(page.rows[0])
        finally:
            engine.ctx.buffer.unpin(pid)
        pid = child


def _leaf_chain_units(engine: Engine, tree) -> list[list[bytes]]:
    """Units per leaf, walking the chain (quiesced tree only)."""
    out: list[list[bytes]] = []
    pid = _first_leaf(engine, tree)
    while pid != NO_PAGE:
        page = engine.ctx.buffer.fetch(pid)
        try:
            out.append([bytes(r) for r in page.rows])
            pid = page.next_page
        finally:
            engine.ctx.buffer.unpin(page.page_id)
    return out


def _fragmented(key_count: int = 4000):
    engine = Engine(buffer_capacity=2048)
    tree = engine.create_index(key_len=4)
    make_half_empty(tree, key_count)
    return engine, tree


def _check_plan_shape(plan: PartitionPlan, workers: int) -> None:
    segs = plan.segments
    assert 1 <= len(segs) <= workers
    assert segs[0].start_unit is None
    assert segs[-1].stop_before is None
    for left, right in zip(segs, segs[1:]):
        # Contiguous: each seam is both a stop and the next start.
        assert left.stop_before == right.start_unit
    seams = [s.stop_before for s in segs[:-1]]
    assert seams == sorted(seams)
    assert len(set(seams)) == len(seams)  # strictly increasing


def test_level1_plan_covers_chain_disjointly():
    engine, tree = _fragmented()
    plan = plan_partitions(
        engine.ctx, tree, RebuildConfig(parallel_workers=4), 0, 4
    )
    _check_plan_shape(plan, 4)
    assert len(plan.segments) == 4  # 4000 half-empty keys: plenty of leaves
    # Every seam splits the unit stream exactly: a unit belongs to the one
    # segment with start <= unit < stop.
    leaves = _leaf_chain_units(engine, tree)
    units = [u for leaf in leaves for u in leaf]
    seams = [s.stop_before for s in plan.segments[:-1]]
    counts = [0] * len(plan.segments)
    for unit in units:
        owner = sum(1 for seam in seams if unit >= seam)
        counts[owner] += 1
    assert sum(counts) == len(units)
    assert all(c > 0 for c in counts)
    # Level-1 cuts balance leaf counts: no segment is pathologically small.
    assert min(counts) >= len(units) // (4 * 4)


def test_level1_seams_fall_on_leaf_boundaries():
    """A level-1 separator is the routing key of a leaf (possibly
    suffix-truncated), so every seam must split the chain *between* two
    leaves — each leaf is copied whole by exactly one worker."""
    engine, tree = _fragmented()
    plan = _plan_from_level1(engine.ctx, tree, 4)
    assert plan is not None
    leaves = _leaf_chain_units(engine, tree)
    assert plan.leaves_walked == len(leaves)
    for seg in plan.segments[:-1]:
        seam = seg.stop_before
        for leaf in leaves:
            # No leaf straddles the seam.
            assert leaf[0] >= seam or leaf[-1] < seam
    # Only the leftmost segment's start is packing-exact by construction.
    assert plan.segments[0].clean_start
    assert not any(s.clean_start for s in plan.segments[1:])


def test_level1_falls_back_on_single_leaf_root():
    """A root-leaf tree has no nonleaf level: the descent bails and the
    leaf walk plans the single segment."""
    engine = Engine(buffer_capacity=256)
    tree = engine.create_index(key_len=4)
    for k in range(8):
        tree.insert(intkey(k), k)
    assert _plan_from_level1(engine.ctx, tree, 4) is None
    plan = plan_partitions(
        engine.ctx, tree, RebuildConfig(parallel_workers=4),
        tree.root_page_id, 4,
    )
    assert len(plan.segments) == 1
    assert plan.segments[0].start_unit is None
    assert plan.segments[0].stop_before is None


def test_exact_packing_plan_admits_only_clean_cuts():
    engine, tree = _fragmented()
    config = RebuildConfig(parallel_workers=4, partition_exact_packing=True)
    first = _first_leaf(engine, tree)
    plan = plan_partitions(engine.ctx, tree, config, first, 4)
    _check_plan_shape(plan, 4)
    leaves = _leaf_chain_units(engine, tree)
    assert plan.leaves_walked == len(leaves)
    assert plan.total_units == sum(len(leaf) for leaf in leaves)
    # Exact packing: every cut taken is clean (possibly fewer segments).
    assert plan.clean_cuts == len(plan.segments) - 1
    for seg in plan.segments:
        assert seg.clean_start


def test_workers_one_plans_single_segment():
    engine, tree = _fragmented(key_count=1000)
    plan = plan_partitions(
        engine.ctx, tree, RebuildConfig(), 0, 1
    )
    assert len(plan.segments) == 1
    assert plan.segments[0] == plan.segments[0].__class__(
        start_unit=None, stop_before=None, clean_start=True
    )


# ------------------------------------------------------------- _choose_cuts


def _b(cum: int, unit: bytes, clean: bool) -> tuple[int, bytes, bool]:
    return (cum, unit, clean)


def test_choose_cuts_prefers_clean_within_window():
    # Ideal cut at 50; dirty boundary dead-on, clean one 10 units off
    # (window = 25% of 50 = 12.5, so the clean one wins).
    boundaries = [_b(40, b"a", True), _b(50, b"b", False)]
    cuts = _choose_cuts(boundaries, 100, 2, exact_packing=False)
    assert cuts == [(40, b"a", True)]


def test_choose_cuts_takes_nearest_when_no_clean_in_window():
    boundaries = [_b(10, b"a", True), _b(48, b"b", False)]
    cuts = _choose_cuts(boundaries, 100, 2, exact_packing=False)
    assert cuts == [(48, b"b", False)]


def test_choose_cuts_exact_packing_drops_dirty_only_regions():
    # Two cuts wanted; only one clean boundary exists → one cut, two
    # segments instead of three.
    boundaries = [_b(30, b"a", False), _b(33, b"b", True), _b(66, b"c", False)]
    cuts = _choose_cuts(boundaries, 100, 3, exact_packing=True)
    assert cuts == [(33, b"b", True)]


def test_choose_cuts_strictly_increasing():
    # Both ideals (33, 66) are nearest to the same boundary; it may be
    # used once only.
    boundaries = [_b(50, b"a", False)]
    cuts = _choose_cuts(boundaries, 100, 3, exact_packing=False)
    assert cuts == [(50, b"a", False)]


def test_choose_cuts_degenerate_inputs():
    assert _choose_cuts([], 100, 4, exact_packing=False) == []
    assert _choose_cuts([_b(1, b"a", True)], 0, 4, exact_packing=False) == []
    assert _choose_cuts([_b(1, b"a", True)], 100, 1, exact_packing=False) == []
