"""Offline (drop-and-recreate) baseline tests."""

from repro import Engine, RebuildConfig, offline_rebuild
from repro.core.offline import table_lock_resource
from repro.concurrency.locks import LockMode, LockSpace
from tests.conftest import contents_as_ints, make_half_empty, intkey, fill_index


def test_offline_rebuild_preserves_contents(index):
    make_half_empty(index, 2500)
    before = index.contents()
    report = offline_rebuild(index)
    assert index.contents() == before
    index.verify()
    assert report.leaf_pages_built > 0
    assert report.old_pages_freed > 0


def test_offline_rebuild_restores_utilization(index):
    make_half_empty(index, 2500)
    before = index.verify().leaf_fill
    offline_rebuild(index)
    # Every page except the last is packed; the mean includes the last.
    after = index.verify().leaf_fill
    assert after > 0.9
    assert after > before + 0.3


def test_offline_rebuild_honors_fillfactor(index):
    make_half_empty(index, 2500)
    offline_rebuild(index, RebuildConfig(fillfactor=0.6))
    assert 0.55 <= index.verify().leaf_fill <= 0.65


def test_offline_rebuild_empty_index(index):
    report = offline_rebuild(index)
    assert index.contents() == []
    index.verify()


def test_offline_rebuild_single_leaf(index):
    index.insert(intkey(1), 1)
    offline_rebuild(index)
    assert index.contains(intkey(1), 1)
    index.verify()


def test_offline_holds_table_lock_for_duration(engine, index):
    """The §1 motivation: the table lock blocks OLTP for the whole rebuild."""
    make_half_empty(index, 1000)
    observed = []

    def snoop(ctx):  # pragma: no cover - not a syncpoint test
        pass

    # While the rebuild runs, the table resource is X locked; verify by
    # wrapping: take the lock first and confirm offline_rebuild waits.
    resource = table_lock_resource(index.index_id)
    probe_txn = engine.ctx.txns.begin()
    engine.ctx.locks.acquire(
        probe_txn.txn_id, LockSpace.LOGICAL, resource, LockMode.S
    )
    import threading

    started = threading.Event()
    finished = threading.Event()

    def run():
        started.set()
        offline_rebuild(index)
        finished.set()

    t = threading.Thread(target=run, daemon=True)
    t.start()
    started.wait(2)
    assert not finished.wait(0.3)  # blocked behind our table lock
    engine.ctx.txns.commit(probe_txn)  # releases the probe lock
    assert finished.wait(10)
    t.join(5)
    index.verify()


def test_offline_multi_level(engine):
    index = engine.create_index(key_len=4)
    fill_index(index, 12000)
    before = index.contents()
    offline_rebuild(index)
    assert index.contents() == before
    stats = index.verify()
    assert stats.height >= 2


def test_offline_report_metrics(index):
    make_half_empty(index, 1500)
    report = offline_rebuild(index)
    assert report.log_bytes > 0
    assert report.lock_held_seconds == report.wall_seconds > 0
