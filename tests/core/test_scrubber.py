"""The online integrity scrubber: detection, repair ladder, quarantine.

Covers the three defect kinds (checksum rot, unreadable reads, structural
violations), the ladder's two repair rungs (WAL replay vs quarantine +
targeted rebuild), false-positive freedom on a healthy index, and the
scrub counters / syncpoints the monitoring layer consumes.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.core.scrubber import ScrubConfig, Scrubber
from repro.errors import QuarantinedRangeError, ScrubError
from repro.storage.faults import FaultPlan

from ..conftest import contents_as_ints, fill_index, intkey, make_half_empty


def faulty_engine(**kwargs) -> Engine:
    kwargs.setdefault("buffer_capacity", 2048)
    kwargs.setdefault("lock_timeout", 15.0)
    kwargs.setdefault("fault_plan", FaultPlan())
    return Engine(**kwargs)


def expected_after(engine: Engine, tree) -> list[int]:
    return contents_as_ints(tree)


# ------------------------------------------------------------- clean passes


def test_clean_index_full_pass_no_defects():
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 2000)
    scrubber = Scrubber(tree)
    report = scrubber.run_pass()
    assert report.complete
    assert report.clean
    assert report.pages_checked >= tree.verify().leaf_pages
    assert engine.counters.scrub_passes == 1
    assert engine.counters.scrub_defects_found == 0


def test_single_leaf_root_pass():
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    for k in range(5):
        tree.insert(intkey(k), k)
    report = Scrubber(tree).run_pass()
    assert report.complete and report.clean
    assert report.pages_checked == 1


def test_config_validation():
    with pytest.raises(ScrubError):
        ScrubConfig(crc_retries=-1)
    with pytest.raises(ScrubError):
        ScrubConfig(max_loop_factor=0)


# --------------------------------------------------------- seeded detection


def test_every_planted_rot_site_found_in_one_pass():
    """Satellite: each FaultyDisk-planted rot site is surfaced within a
    single pass (repair off so detections accumulate instead of healing)."""
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 3000)
    engine.checkpoint()
    disk = engine.ctx.disk
    stats = tree.verify()
    victims = stats.leaf_page_ids[1::5]  # every 5th leaf
    assert victims
    for i, pid in enumerate(victims):
        assert disk.plant_rot(pid, bit=100 + 64 * i)
    engine.ctx.buffer.evict_all()
    scrubber = Scrubber(tree, config=ScrubConfig(repair=False))
    report = scrubber.run_pass()
    found = {d.page_id for d in report.defects}
    assert set(disk.rot_sites) == set(victims)
    assert found == set(victims), f"missed {set(victims) - found}"
    assert engine.counters.scrub_defects_found == len(victims)


def test_detect_only_leaves_quarantine_untouched():
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 1500)
    engine.checkpoint()
    engine.ctx.disk.plant_rot(tree.verify().leaf_page_ids[0])
    engine.ctx.buffer.evict_all()
    report = Scrubber(tree, config=ScrubConfig(repair=False)).run_pass()
    assert not report.clean
    assert all(d.action == "reported" for d in report.defects)
    assert engine.quarantine.ranges(tree.index_id) == []


# ------------------------------------------------------------ repair ladder


def test_ladder2_unreadable_page_replayed_from_wal():
    """Rot on a page whose full history is still in the durable log is
    reconstructed by recovery replay — no quarantine, no rebuild."""
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 1500)
    before = contents_as_ints(tree)
    engine.ctx.buffer.flush_all()
    victim = tree.verify().leaf_page_ids[2]
    assert engine.ctx.disk.plant_rot(victim, bit=333)
    engine.ctx.buffer.evict_all()  # the frame is gone; disk rot is all there is
    report = Scrubber(tree).run_pass()
    assert [d.kind for d in report.defects] == ["unreadable"]
    assert report.defects[0].action == "replayed"
    assert engine.counters.scrub_repairs_replay == 1
    assert engine.quarantine.ranges(tree.index_id) == []
    assert contents_as_ints(tree) == before
    tree.verify()


def test_ladder2_replay_of_bulk_loaded_leaf_keeps_chain_link():
    """Regression: the bulk loader patched each leaf's next-link directly
    on the buffered page without logging it, so a replay repair rebuilt
    the leaf from its FORMAT history *without* the link — truncating the
    leaf chain.  The patch is now WAL-logged (CHANGENEXTLINK); replay of
    a bulk-loaded leaf must reproduce the full page, chain included."""
    from repro.workload.builder import bulk_load

    engine = faulty_engine()
    tree = bulk_load(
        engine, [intkey(i) for i in range(3000)], key_len=4, fill=0.9
    )
    before = contents_as_ints(tree)
    engine.ctx.buffer.flush_all()
    victim = tree.verify().leaf_page_ids[2]
    assert engine.ctx.disk.plant_rot(victim, bit=99)
    engine.ctx.buffer.evict_all()
    report = Scrubber(tree).run_pass()
    assert [d.action for d in report.defects] == ["replayed"]
    assert engine.quarantine.ranges(tree.index_id) == []
    tree.verify()  # the chain is whole: every leaf reachable
    assert contents_as_ints(tree) == before


def test_ladder3_flush_heals_resident_frame():
    """Rot under a clean resident frame: the buffer still holds the good
    image, so the repair is a re-flush, not a replay or rebuild."""
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 1500)
    engine.ctx.buffer.flush_all()
    victim = tree.verify().leaf_page_ids[1]  # verify left it resident
    assert engine.ctx.buffer.is_resident(victim)
    assert engine.ctx.disk.plant_rot(victim)
    report = Scrubber(tree).run_pass()
    assert [d.kind for d in report.defects] == ["checksum"]
    assert report.defects[0].action == "flushed"
    assert engine.counters.scrub_repairs_flush == 1
    # The stored image verifies again.
    assert Scrubber(tree).run_pass().clean


def test_ladder3_quarantine_and_targeted_rebuild():
    """Rot the WAL can no longer explain (history truncated) under a
    still-resident frame: replay is ineligible, so the range is fenced,
    the segment rebuilt online from the live frame, and the fence lifted
    — the rest of the index never stops serving."""
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    expected = make_half_empty(tree, 3000)
    before = contents_as_ints(tree)
    engine.checkpoint(truncate=True)  # birth records gone: replay ineligible
    victim = tree.verify().leaf_page_ids[3]
    assert engine.ctx.disk.plant_rot(victim, bit=700)
    report = Scrubber(tree).run_pass()
    assert [d.kind for d in report.defects] == ["checksum"]
    assert report.defects[0].action == "repaired"
    assert engine.counters.scrub_quarantines == 1
    assert engine.counters.scrub_quarantine_lifts == 1
    assert engine.quarantine.ranges(tree.index_id) == []
    assert contents_as_ints(tree) == before == sorted(expected)
    tree.verify()


def test_quarantine_stands_when_rebuild_fails(monkeypatch):
    """A failed targeted rebuild leaves the fence up: readers in the
    range fail fast with QuarantinedRangeError, the rest still serves."""
    import repro.core.scrubber as scrubber_mod

    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 3000)
    engine.checkpoint(truncate=True)
    victim = tree.verify().leaf_page_ids[3]
    victim_keys = {
        int.from_bytes(row[: tree.key_len], "big")
        for row in engine.ctx.buffer.fetch(victim).rows
    }
    engine.ctx.buffer.unpin(victim)
    assert engine.ctx.disk.plant_rot(victim, bit=42)
    engine.ctx.buffer.evict_all()

    from repro.errors import RebuildError

    class FailingSupervisor:
        def __init__(self, *a, **k):
            pass

        def run(self, *a, **k):
            raise RebuildError("injected: repair rebuild denied")

    monkeypatch.setattr(scrubber_mod, "RebuildSupervisor", FailingSupervisor)
    report = Scrubber(tree).run_pass()
    assert report.defects[0].action == "quarantine-stands"
    assert "denied" in report.defects[0].error
    standing = engine.quarantine.ranges(tree.index_id)
    assert len(standing) == 1
    sample = sorted(victim_keys)[len(victim_keys) // 2]
    with pytest.raises(QuarantinedRangeError):
        tree.contains(intkey(sample), sample)
    with pytest.raises(QuarantinedRangeError):
        tree.insert(intkey(sample), sample + 1)
    # A key far outside the fence still serves.
    outside = 0 if sample > 1500 else 2999
    tree.contains(intkey(outside), outside)


def test_clean_pass_lifts_stale_fence():
    """A fence nothing re-confirms dirty (e.g. recovery re-fenced a range
    whose LIFT record missed the final flush) is released by the next
    complete clean pass."""
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 1200)
    engine.quarantine.set_range(tree.index_id, intkey(100), intkey(200))
    assert engine.quarantine.ranges(tree.index_id)
    report = Scrubber(tree).run_pass()
    assert report.complete and report.clean
    assert engine.quarantine.ranges(tree.index_id) == []
    assert engine.counters.scrub_quarantine_lifts == 1


# ----------------------------------------------------------- structure kind


def test_structural_damage_reported_not_rewritten():
    """A page whose *content* violates local invariants (but checksums
    fine) is diagnosed and reported; the scrubber never rewrites intact
    bytes on its own."""
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 1500)
    victim = tree.verify().leaf_page_ids[2]
    page = engine.ctx.buffer.fetch(victim)
    rows = [page.row(i) for i in range(page.nrows)]
    page.delete_row(0)
    page.insert_row(0, rows[1])  # duplicate first unit: ordering violation
    engine.ctx.buffer.unpin(victim, dirty=True)
    engine.ctx.buffer.flush_all()
    report = Scrubber(tree).run_pass()
    kinds = {d.kind for d in report.defects}
    assert kinds == {"structure"}
    assert all(d.action == "reported" for d in report.defects)
    assert report.defects[0].problems


# ----------------------------------------------------- pacing and lifecycle


def test_background_thread_runs_passes_and_stops():
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 800)
    scrubber = Scrubber(tree, config=ScrubConfig(pass_interval=0.01))
    scrubber.start()
    with pytest.raises(ScrubError):
        scrubber.start()
    import time

    deadline = time.monotonic() + 10.0
    while len(scrubber.passes) < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    scrubber.stop()
    assert len(scrubber.passes) >= 3
    assert scrubber.last_error is None
    assert all(p.complete and p.clean for p in scrubber.passes)


def test_throttle_widens_pause_under_latency_pressure():
    class FakeStats:
        def __init__(self):
            self.p99 = 99.0

        def latency_percentiles(self):
            return {"all": {"p50": 50.0, "p95": 90.0, "p99": self.p99}}

    from repro.core.scrubber import ScrubReport

    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 200)
    stats = FakeStats()
    scrubber = Scrubber(
        tree,
        config=ScrubConfig(
            latency_budget_ms=1.0, throttle_step=0.001, throttle_cap=0.003
        ),
        oltp_stats=stats,
    )
    report = ScrubReport()
    scrubber._pace(report)
    scrubber._pace(report)
    assert report.throttles == 2
    assert engine.counters.scrub_throttles == 2
    assert scrubber._pause > scrubber.config.pause
    # Calm OLTP decays the pause back toward the configured baseline.
    stats.p99 = 0.1
    for _ in range(10):
        scrubber._pace(report)
    assert scrubber._pause == pytest.approx(scrubber.config.pause)


def test_segment_epochs_track_coverage():
    engine = faulty_engine()
    tree = engine.create_index(key_len=4)
    fill_index(tree, 2000)
    scrubber = Scrubber(tree)
    scrubber.run_pass()
    assert scrubber.segment_epochs
    assert set(scrubber.segment_epochs.values()) == {1}
    scrubber.run_pass()
    assert set(scrubber.segment_epochs.values()) == {2}
