"""White-box unit tests for §5's propagation machinery on hand-built
trees: grouping, delete/insert phases, the §5.3 rules, §5.3.2 splits,
and the §5.3.3 UPDATE key computation."""

import pytest

from repro import Engine, RebuildConfig
from repro.btree import keys as K
from repro.btree import node
from repro.btree.traversal import Traversal
from repro.btree.tree import BTree
from repro.core.propagation import (
    PropOp,
    PropagationEntry,
    PropagationState,
    propagate_to_level,
)
from repro.errors import RebuildError
from repro.storage.page import NO_PAGE, PageFlag, PageType
from repro.storage.page_manager import PageState


def unit(k: int) -> bytes:
    return K.leaf_unit(k.to_bytes(4, "big"), k, 4)


def sep(a: int, b: int) -> bytes:
    return K.separator(unit(a), unit(b))


class Harness:
    """A hand-built two-level tree plus the plumbing to run propagation."""

    def __init__(self, leaf_keys: list[list[int]], page_size: int = 512):
        self.engine = Engine(page_size=page_size, buffer_capacity=64)
        self.ctx = self.engine.ctx
        self.leaves: list[int] = []
        prev = NO_PAGE
        for keys in leaf_keys:
            pid = self._page(PageType.LEAF, 0, [unit(k) for k in keys])
            if prev != NO_PAGE:
                prev_page = self.ctx.buffer.fetch(prev)
                prev_page.next_page = pid
                self.ctx.buffer.unpin(prev, dirty=True)
                page = self.ctx.buffer.fetch(pid)
                page.prev_page = prev
                self.ctx.buffer.unpin(pid, dirty=True)
            self.leaves.append(pid)
            prev = pid
        entries = [node.encode_entry(b"", self.leaves[0])]
        for i in range(1, len(self.leaves)):
            entries.append(
                node.encode_entry(
                    sep(leaf_keys[i - 1][-1], leaf_keys[i][0]),
                    self.leaves[i],
                )
            )
        self.parent = self._page(PageType.NONLEAF, 1, entries)
        root_entries = [node.encode_entry(b"", self.parent)]
        self.root = self._page(PageType.NONLEAF, 2, root_entries)
        self.tree = BTree(self.ctx, 1, 4, self.root)
        self.engine.indexes[1] = self.tree
        self.ctx.index_roots[1] = self.root
        self.txn = self.ctx.txns.begin()
        self.ctx.txns.begin_nta(self.txn)
        self.cleanup: list[int] = []
        self.deallocated: list[int] = []
        self.new_pages: list[int] = []

    def _page(self, page_type, level, rows):
        pid = self.ctx.page_manager.allocate()
        page = self.ctx.buffer.new_page(pid)
        page.page_type = page_type
        page.level = level
        page.index_id = 1
        for row in rows:
            page.append_row(row)
        self.ctx.buffer.unpin(pid, dirty=True)
        return pid

    def new_leaf(self, keys: list[int]) -> int:
        """A 'new page' standing in for a copy-phase output."""
        return self._page(PageType.LEAF, 0, [unit(k) for k in keys])

    def propagate(self, entries, config=None, state=None):
        config = config or RebuildConfig(ntasize=1, xactsize=1)
        state = state or PropagationState()
        return propagate_to_level(
            self.ctx, self.tree, self.txn, entries, 1,
            Traversal(self.ctx, self.tree),
            self.cleanup, self.deallocated, self.new_pages, config, state,
        )

    def parent_children(self):
        page = self.ctx.buffer.fetch(self.parent)
        out = node.child_ids(page)
        self.ctx.buffer.unpin(self.parent)
        return out

    def parent_entries(self):
        page = self.ctx.buffer.fetch(self.parent)
        out = node.entries(page)
        self.ctx.buffer.unpin(self.parent)
        return out


def test_delete_entry_removes_child():
    h = Harness([[10, 11], [20, 21], [30, 31]])
    out = h.propagate(
        [PropagationEntry(PropOp.DELETE, h.leaves[1], route_key=unit(20))]
    )
    assert out == []
    assert h.parent_children() == [h.leaves[0], h.leaves[2]]


def test_update_replaces_entry_in_place():
    h = Harness([[10, 11], [20, 21], [30, 31]])
    n1 = h.new_leaf([21])
    out = h.propagate(
        [
            PropagationEntry(
                PropOp.UPDATE, h.leaves[1], route_key=unit(20),
                new_key=sep(20, 21), new_child=n1,
            )
        ]
    )
    assert out == []
    assert h.parent_children() == [h.leaves[0], n1, h.leaves[2]]
    assert node.entry_key(
        h.ctx.buffer.fetch(h.parent).rows[1]
    ) == sep(20, 21)
    h.ctx.buffer.unpin(h.parent)


def test_first_child_update_strips_key_and_passes_update():
    """§5.3.3: key movement across subtrees — the parent passes UPDATE
    with the new first child's key."""
    h = Harness([[10, 11], [20, 21], [30, 31]])
    n1 = h.new_leaf([11])
    out = h.propagate(
        [
            PropagationEntry(
                PropOp.UPDATE, h.leaves[0], route_key=unit(10),
                new_key=sep(10, 11), new_child=n1,
            )
        ]
    )
    # The new first entry is physically keyless.
    assert node.entry_key(
        h.ctx.buffer.fetch(h.parent).rows[0]
    ) == b""
    h.ctx.buffer.unpin(h.parent)
    # And the parent tells ITS parent the key via UPDATE [Ku, P].
    assert len(out) == 1
    assert out[0].op is PropOp.UPDATE
    assert out[0].origin == h.parent
    assert out[0].new_key == sep(10, 11)
    assert out[0].new_child == h.parent


def test_first_child_delete_with_surviving_old_entry():
    """§5.3.3 second case: the leftmost surviving child passed nothing, so
    the parent's UPDATE carries that child's old separator Ki."""
    h = Harness([[10, 11], [20, 21], [30, 31]])
    old_sep = sep(11, 20)
    out = h.propagate(
        [PropagationEntry(PropOp.DELETE, h.leaves[0], route_key=unit(10))]
    )
    assert h.parent_children() == [h.leaves[1], h.leaves[2]]
    # New first entry keyless.
    assert h.parent_entries()[0].key == b""
    assert len(out) == 1
    assert out[0].op is PropOp.UPDATE
    assert out[0].new_key == old_sep


def test_middle_delete_passes_nothing():
    h = Harness([[10, 11], [20, 21], [30, 31]])
    out = h.propagate(
        [PropagationEntry(PropOp.DELETE, h.leaves[1], route_key=unit(20))]
    )
    assert out == []


def test_all_children_deleted_shrinks_parent_directly():
    """§5.3.1: deletes are NOT performed; the page is deallocated whole."""
    h = Harness([[10, 11], [20, 21]])
    out = h.propagate(
        [
            PropagationEntry(PropOp.DELETE, h.leaves[0], route_key=unit(10)),
            PropagationEntry(PropOp.DELETE, h.leaves[1], route_key=unit(20)),
        ]
    )
    assert h.ctx.page_manager.state(h.parent) is PageState.DEALLOCATED
    # Rows were never individually deleted.
    page = h.ctx.buffer.fetch(h.parent)
    assert page.nrows == 2
    h.ctx.buffer.unpin(h.parent)
    assert [e.op for e in out] == [PropOp.DELETE]
    assert out[0].origin == h.parent


def test_bits_shrink_for_deletes_split_for_insert_only():
    """§5.4.2 lock/bit rules."""
    h = Harness([[10, 11], [20, 21], [30, 31]])
    n1 = h.new_leaf([15])
    # Insert-only group (an INSERT whose origin still has its entry).
    h.propagate(
        [
            PropagationEntry(
                PropOp.INSERT, h.leaves[0], route_key=unit(10),
                new_key=sep(11, 15), new_child=n1,
            )
        ]
    )
    page = h.ctx.buffer.fetch(h.parent)
    assert page.has_flag(PageFlag.SPLIT)
    assert not page.has_flag(PageFlag.SHRINK)
    h.ctx.buffer.unpin(h.parent)

    h2 = Harness([[10, 11], [20, 21], [30, 31]])
    h2.propagate(
        [PropagationEntry(PropOp.DELETE, h2.leaves[1], route_key=unit(20))]
    )
    page = h2.ctx.buffer.fetch(h2.parent)
    assert page.has_flag(PageFlag.SHRINK)
    h2.ctx.buffer.unpin(h2.parent)


def test_insert_overflow_splits_parent():
    """§5.3.2: remaining inserts land on one side; each sibling yields an
    INSERT propagation entry."""
    # A small page so a few entries overflow the parent (capacity ~96 B;
    # the parent starts at ~76 B and each insert adds ~10 B).
    h = Harness([[100 * i, 100 * i + 1] for i in range(8)], page_size=136)
    # Replace leaf 3 with many new pages.
    news = [h.new_leaf([300 + j]) for j in range(6)]
    entries = [
        PropagationEntry(
            PropOp.UPDATE, h.leaves[3], route_key=unit(300),
            new_key=sep(201, 300), new_child=news[0],
        )
    ]
    for j in range(1, 6):
        entries.append(
            PropagationEntry(
                PropOp.INSERT, h.leaves[3], route_key=unit(300),
                new_key=sep(300 + j - 1, 300 + j), new_child=news[j],
            )
        )
    out = h.propagate(entries)
    inserts_up = [e for e in out if e.op is PropOp.INSERT]
    assert inserts_up, "the parent split must pass INSERT entries upward"
    for e in inserts_up:
        assert h.ctx.page_manager.is_allocated(e.new_child)
        sibling = h.ctx.buffer.fetch(e.new_child)
        assert sibling.page_type is PageType.NONLEAF
        assert sibling.has_flag(PageFlag.SHRINK)  # §5.4.2 split rule
        assert node.entry_key(sibling.rows[0]) == b""
        h.ctx.buffer.unpin(e.new_child)


def test_redirect_to_prev_survivor():
    """§5.5 within one top action: the second group's inserts go to the
    level-1 page written just before it."""
    eng = Engine(page_size=512, buffer_capacity=64)
    # Build three level-1 pages via the harness trick: reuse Harness but
    # with two parents is complex; instead simulate with prev_survivor.
    h = Harness([[10, 11], [20, 21], [30, 31]])
    n1 = h.new_leaf([20])
    state = PropagationState(prev_survivor=None)
    # First group: delete leaf1 and update to n1 with first child deleted.
    out = h.propagate(
        [
            PropagationEntry(
                PropOp.UPDATE, h.leaves[0], route_key=unit(10),
                new_key=b"\x00", new_child=n1,
            ),
        ],
        state=state,
    )
    # After the group, this page is remembered as the survivor.
    assert state.prev_survivor == h.parent


def test_group_mismatch_raises():
    h = Harness([[10, 11], [20, 21]])
    with pytest.raises(RebuildError):
        h.propagate(
            [PropagationEntry(PropOp.DELETE, 99999, route_key=unit(10))]
        )


def test_non_contiguous_deletes_rejected():
    h = Harness([[10, 11], [20, 21], [30, 31]])
    with pytest.raises(RebuildError):
        h.propagate(
            [
                PropagationEntry(
                    PropOp.DELETE, h.leaves[0], route_key=unit(10)
                ),
                PropagationEntry(
                    PropOp.DELETE, h.leaves[2], route_key=unit(10)
                ),
            ]
        )
