"""Side-tree ([ZS96]/[SBC97]-style) baseline: correctness, and the §7
cost behaviors the paper's inline algorithm avoids."""

import threading
import time

import pytest

from repro import Engine, RebuildConfig
from repro.core.sidetree import sidetree_rebuild
from repro.errors import RebuildError
from tests.conftest import contents_as_ints, intkey, make_half_empty


def test_quiesced_rebuild_preserves_contents(index):
    make_half_empty(index, 2500)
    before = index.contents()
    report = sidetree_rebuild(index)
    assert index.contents() == before
    stats = index.verify()
    assert stats.leaf_fill > 0.9
    assert report.journal_entries == 0
    assert report.switch_seconds >= 0


def test_doubled_storage_during_build(engine, index):
    """§7 on [SBC97]: 'A separate copy of the table is made ... doubling
    the storage requirement.'"""
    make_half_empty(index, 2500)
    peak = {}
    engine.syncpoints.on(
        "sidetree.built", lambda ctx: peak.update(ctx)
    )
    report = sidetree_rebuild(index)
    after = index.verify()
    # While the side tree existed, a complete second copy of the index was
    # allocated on top of the old one (the final tree's size, give or take
    # the reinstalled root).
    assert report.peak_extra_pages >= after.leaf_pages
    assert peak["pages"] == report.peak_extra_pages


def test_concurrent_updates_captured_in_sidefile(engine, index):
    make_half_empty(index, 2500)
    stop = threading.Event()
    errors = []
    inserted = []

    def writer():
        # A bounded, throttled writer: enough traffic to populate the
        # sidefile, not so much that the drain loop chases forever.
        try:
            for k in range(1_000_000, 1_000_300):
                if stop.is_set():
                    break
                index.insert(intkey(k), k)
                inserted.append(k)
                time.sleep(0.001)
        except Exception:
            import traceback

            errors.append(traceback.format_exc())

    t = threading.Thread(target=writer, daemon=True)
    t.start()
    try:
        report = sidetree_rebuild(index, drain_threshold=8)
    finally:
        stop.set()
        t.join(30)
    assert errors == [], errors[:1]
    index.verify()
    # Every concurrent insert that happened before the switch must have
    # traveled through the sidefile into the new tree; later ones went to
    # the (already switched) tree directly.  Either way: all present.
    got = set(contents_as_ints(index))
    for k in inserted:
        assert k in got, k


def test_switch_blocks_operations(engine, index):
    """§7 on [ZS96]: switching requires an exclusive lock on the tree."""
    make_half_empty(index, 1500)
    blocked_for = {}
    release = threading.Event()

    def park_in_switch(ctx):
        # Called right after the switch completes; before that, the gate
        # was closed.  To observe blocking we instead time an operation
        # issued while quiesced — see below.
        pass

    # Close the gate manually (what the switch does) and measure a writer.
    index.close_gate_and_quiesce()
    done = threading.Event()

    def writer():
        started = time.perf_counter()
        index.insert(intkey(123_456), 123_456)
        blocked_for["s"] = time.perf_counter() - started
        done.set()

    t = threading.Thread(target=writer, daemon=True)
    t.start()
    assert not done.wait(0.3), "gate failed to block the writer"
    index.open_gate()
    assert done.wait(10)
    t.join(5)
    assert blocked_for["s"] > 0.25


def test_rebuild_flag_guard(index):
    make_half_empty(index, 500)
    index._rebuild_active = True
    with pytest.raises(RebuildError):
        sidetree_rebuild(index)
    index._rebuild_active = False


def test_sidetree_with_payloads(index):
    for k in range(600):
        index.insert(intkey(k), k, payload=b"p%d" % k)
    for k in range(0, 600, 2):
        index.delete(intkey(k), k)
    before = index.contents_with_payloads()
    sidetree_rebuild(index)
    assert index.contents_with_payloads() == before
    index.verify()


def test_empty_tree(index):
    report = sidetree_rebuild(index)
    assert index.contents() == []
    index.verify()
