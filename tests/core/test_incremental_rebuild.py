"""Incremental and range-restricted rebuild (§7: inline reorganization
makes incremental operation trivial, unlike copy/sidefile schemes)."""

from repro import OnlineRebuild, RebuildConfig
from tests.conftest import contents_as_ints, intkey, make_half_empty


def rebuilder(index):
    return OnlineRebuild(index, RebuildConfig(ntasize=8, xactsize=16))


def test_max_pages_stops_early(index):
    make_half_empty(index, 3000)
    leaves = index.verify().leaf_pages
    report = rebuilder(index).run(max_pages=16)
    assert not report.completed
    assert 16 <= report.leaf_pages_rebuilt <= 24  # top-action granularity
    assert report.resume_unit is not None
    index.verify()


def test_resume_completes_the_job(index):
    make_half_empty(index, 3000)
    before = index.contents()
    report = rebuilder(index).run(max_pages=8)
    slices = 1
    while not report.completed:
        report = rebuilder(index).run(
            max_pages=8, resume_after=report.resume_unit
        )
        slices += 1
    assert slices > 2  # it really was incremental
    assert index.contents() == before
    stats = index.verify()
    assert stats.leaf_fill > 0.9


def test_contents_preserved_after_partial_slice(index):
    make_half_empty(index, 3000)
    before = index.contents()
    rebuilder(index).run(max_pages=8)
    assert index.contents() == before
    index.verify()


def test_oltp_between_slices(index):
    make_half_empty(index, 3000)
    report = rebuilder(index).run(max_pages=16)
    # The index is fully usable between slices.
    index.insert(intkey(100_000), 100_000)
    index.delete(intkey(1), 1)
    report = rebuilder(index).run(resume_after=report.resume_unit)
    assert report.completed
    assert index.contains(intkey(100_000), 100_000)
    assert not index.contains(intkey(1), 1)
    index.verify()


def test_range_restricted_rebuild_touches_only_the_range(index):
    make_half_empty(index, 4000)
    stats = index.verify()
    # Identify the leaves currently covering keys outside [1000, 2000].
    outside_before = [
        pid
        for pid in stats.leaf_page_ids
        if _leaf_high(index, pid) < intkey(1000) + b"\x00" * 6
        or _leaf_low(index, pid) > intkey(2000) + b"\xff" * 6
    ]
    before = index.contents()
    report = rebuilder(index).run(
        start_key=intkey(1000), end_key=intkey(2000)
    )
    assert report.completed
    assert index.contents() == before
    after_ids = set(index.verify().leaf_page_ids)
    # Every leaf fully outside the range kept its identity.
    for pid in outside_before:
        assert pid in after_ids
    # And a fair number of in-range leaves were rebuilt.
    assert report.leaf_pages_rebuilt >= 5


def test_range_rebuild_packs_the_range(index):
    make_half_empty(index, 4000)
    rebuilder(index).run(start_key=intkey(1000), end_key=intkey(2000))
    # Rows in the range sit on full pages now.
    stats = index.verify()
    in_range_fills = []
    for pid in stats.leaf_page_ids:
        low = _leaf_low(index, pid)
        if intkey(1000) <= low[:4] <= intkey(1900):
            in_range_fills.append(_leaf_fill(index, pid))
    assert in_range_fills
    assert sum(in_range_fills) / len(in_range_fills) > 0.8


def test_range_beyond_contents_is_noop(index):
    make_half_empty(index, 500)
    report = rebuilder(index).run(start_key=intkey(900_000))
    assert report.completed
    assert report.leaf_pages_rebuilt <= 1  # at most the boundary leaf


def _leaf_low(index, pid):
    page = index.ctx.buffer.fetch(pid)
    low = page.rows[0]
    index.ctx.buffer.unpin(pid)
    return low


def _leaf_high(index, pid):
    page = index.ctx.buffer.fetch(pid)
    high = page.rows[-1]
    index.ctx.buffer.unpin(pid)
    return high


def _leaf_fill(index, pid):
    page = index.ctx.buffer.fetch(pid)
    fill = page.fill_fraction()
    index.ctx.buffer.unpin(pid)
    return fill
