"""End-to-end online rebuild tests (§3–§6)."""

import pytest

from repro import Engine, OnlineRebuild, RebuildConfig
from repro.errors import RebuildAbortedError, RebuildError
from repro.storage.page_manager import PageState
from repro.workload import bulk_load, declustering_metric, keys_for_config
from tests.conftest import contents_as_ints, fill_index, intkey, make_half_empty


def rebuild(index, **kw):
    defaults = dict(ntasize=8, xactsize=32)
    defaults.update(kw)
    return OnlineRebuild(index, RebuildConfig(**defaults)).run()


def test_contents_preserved_exactly(index):
    make_half_empty(index, 3000)
    before = index.contents()
    rebuild(index)
    assert index.contents() == before
    index.verify()


def test_space_utilization_restored(index):
    make_half_empty(index, 3000)
    before = index.verify()
    assert before.leaf_fill < 0.55
    report = rebuild(index, fillfactor=1.0)
    after = index.verify()
    assert after.leaf_fill > 0.95
    assert after.leaf_pages < before.leaf_pages
    assert report.leaf_pages_rebuilt == before.leaf_pages


def test_fillfactor_leaves_headroom(index):
    make_half_empty(index, 3000)
    rebuild(index, fillfactor=0.75)
    after = index.verify()
    assert 0.70 <= after.leaf_fill <= 0.80


def test_old_pages_deallocated_then_freed(engine, index):
    make_half_empty(index, 2000)
    old_leaves = set(index.verify().leaf_page_ids)
    report = rebuild(index)
    new_leaves = set(index.verify().leaf_page_ids)
    assert old_leaves.isdisjoint(new_leaves)
    for pid in old_leaves:
        assert engine.ctx.page_manager.state(pid) is PageState.FREE
    assert report.pages_freed >= len(old_leaves)
    # Nothing stuck in the deallocated limbo state.
    assert engine.ctx.page_manager.deallocated_pages() == []


def test_new_pages_are_clustered(engine):
    # Build declustered (random insert order), then rebuild.
    index = engine.create_index(key_len=4)
    make_half_empty(index, 4000, seed=7)
    before = declustering_metric(index)
    rebuild(index, ntasize=32, xactsize=128)
    after = declustering_metric(index)
    assert after < before
    assert after < 1.5  # §6.1: new leaves contiguous in key order


def test_level1_pages_packed(engine):
    """§5.5: level-1 pages are reorganized during propagation — no
    separate pass — leaving them nearly full and fewer in number."""
    keys, klen = keys_for_config("wide40", 20000)
    index = bulk_load(engine, keys, klen, fill=0.5)
    rebuild(index, ntasize=32, xactsize=256)
    after = index.verify()
    assert after.level1_fill > 0.8


def test_level1_reorg_off_leaves_fragmentation(engine):
    """A1 ablation: without §5.5, level-1 pages end about half empty and
    twice as numerous."""
    keys, klen = keys_for_config("wide40", 20000)
    index = bulk_load(engine, keys, klen, fill=0.5)
    rebuild(index, ntasize=32, xactsize=256, reorganize_level1=False)
    naive = index.verify()

    engine2 = Engine(buffer_capacity=4096)
    index2 = bulk_load(engine2, keys, klen, fill=0.5)
    OnlineRebuild(
        index2, RebuildConfig(ntasize=32, xactsize=256)
    ).run()
    packed = index2.verify()
    assert packed.level1_fill > naive.level1_fill + 0.2
    assert packed.level1_pages < naive.level1_pages


def test_ntasize_one_matches_contents(index):
    make_half_empty(index, 1500)
    before = index.contents()
    report = rebuild(index, ntasize=1, xactsize=32)
    assert index.contents() == before
    assert report.top_actions == report.leaf_pages_rebuilt


def test_larger_ntasize_logs_less(engine):
    keys, klen = keys_for_config("int4", 20000)
    results = {}
    for nta in (1, 32):
        eng = Engine(buffer_capacity=8192)
        index = bulk_load(eng, keys, klen, fill=0.5)
        results[nta] = OnlineRebuild(
            index, RebuildConfig(ntasize=nta, xactsize=256)
        ).run()
    assert results[1].log_bytes > 3 * results[32].log_bytes  # Table 1 shape


def test_larger_ntasize_visits_level1_less(engine):
    keys, klen = keys_for_config("int4", 20000)
    visits = {}
    for nta in (1, 32):
        eng = Engine(buffer_capacity=8192)
        index = bulk_load(eng, keys, klen, fill=0.5)
        report = OnlineRebuild(
            index, RebuildConfig(ntasize=nta, xactsize=256)
        ).run()
        visits[nta] = report.counter_deltas["level1_visits"]
    assert visits[1] > 5 * visits[32]  # §4.3 / §6.2


def test_xactsize_bounds_transactions(index):
    make_half_empty(index, 3000)
    leaves = index.verify().leaf_pages
    report = rebuild(index, ntasize=8, xactsize=16)
    assert report.transactions >= leaves // 16


def test_single_leaf_index_is_noop(index):
    index.insert(intkey(1), 1)
    report = rebuild(index)
    assert report.leaf_pages_rebuilt == 0
    assert index.contains(intkey(1), 1)


def test_empty_index_is_noop(index):
    report = rebuild(index)
    assert report.leaf_pages_rebuilt == 0


def test_two_leaf_index(index):
    fill_index(index, 300, seed=None)
    assert index.verify().leaf_pages >= 2
    before = index.contents()
    rebuild(index)
    assert index.contents() == before


def test_rebuild_of_freshly_packed_index_is_stable(index):
    make_half_empty(index, 2000)
    rebuild(index)
    first = index.verify()
    rebuild(index)
    second = index.verify()
    assert second.leaf_pages == first.leaf_pages
    index.verify()


def test_concurrent_rebuild_rejected(engine, index):
    make_half_empty(index, 500)
    rb = OnlineRebuild(index)
    index._rebuild_active = True
    with pytest.raises(RebuildError):
        rb.run()
    index._rebuild_active = False


def test_abort_keeps_completed_top_actions(engine, index):
    make_half_empty(index, 3000)
    before = index.contents()
    fired = {"count": 0}

    def boom(ctx):
        fired["count"] += 1
        if fired["count"] == 3:
            raise KeyboardInterrupt("user interrupt")

    engine.syncpoints.on("rebuild.nta_end", boom)
    with pytest.raises(RebuildAbortedError):
        rebuild(index)
    engine.syncpoints.clear()
    # Contents intact, structure valid, partial progress kept.
    assert index.contents() == before
    stats = index.verify()
    # The completed top actions' old pages were freed (§4.1.3).
    assert engine.ctx.page_manager.deallocated_pages() == []
    # The rebuild can be resumed (re-run) afterwards.
    rebuild(index)
    assert index.contents() == before
    assert index.verify().leaf_fill > 0.9


def test_report_counters(index):
    make_half_empty(index, 2000)
    report = rebuild(index, ntasize=8, xactsize=64)
    assert report.top_actions > 0
    assert report.transactions > 0
    assert report.log_bytes > 0
    assert report.new_leaf_pages > 0
    assert report.wall_seconds > 0
    assert not report.aborted
    assert report.log_bytes_by_type.get("KEYCOPY", 0) > 0


def test_wide_key_rebuild(engine):
    keys, klen = keys_for_config("wide40", 8000)
    index = bulk_load(engine, keys, klen, fill=0.5)
    before = index.contents()
    OnlineRebuild(index, RebuildConfig(ntasize=16, xactsize=64)).run()
    assert index.contents() == before
    assert index.verify().leaf_fill > 0.9


def test_split_then_shrink_mode_equivalent_result(index):
    make_half_empty(index, 2000)
    before = index.contents()
    rebuild(index, split_then_shrink=True)
    assert index.contents() == before
    index.verify()
