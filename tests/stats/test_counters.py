"""Thread-safety and name-validation tests for the sharded Counters."""

import threading

import pytest

from repro.stats.counters import (
    COUNTER_FIELDS,
    Counters,
    UnknownCounterError,
)


def test_add_and_snapshot():
    c = Counters()
    c.add("page_reads")
    c.add("page_reads", 4)
    c.add("log_bytes", 100)
    assert c.page_reads == 5
    assert c.log_bytes == 100
    snap = c.snapshot()
    assert snap["page_reads"] == 5
    assert c.diff(snap)["page_reads"] == 0


def test_local_shard_increments_are_visible():
    c = Counters()
    shard = c.local_shard()
    shard["latch_acquires"] += 7
    shard["key_comparisons"] += 3
    assert c.latch_acquires == 7
    assert c.snapshot()["key_comparisons"] == 3


def test_concurrent_increments_are_exact():
    """8 threads hammering overlapping counters must lose no increment,
    even with concurrent snapshot readers in flight."""
    c = Counters()
    threads_n, per_thread = 8, 20_000
    fields = ("page_reads", "latch_acquires", "log_records", "key_comparisons")
    start = threading.Barrier(threads_n + 1)
    stop_reading = threading.Event()

    def writer():
        start.wait()
        shard = c.local_shard()
        for i in range(per_thread):
            c.add(fields[i & 3])
            shard[fields[(i + 1) & 3]] += 1

    def reader():
        while not stop_reading.is_set():
            snap = c.snapshot()
            assert all(snap[f] >= 0 for f in fields)

    workers = [threading.Thread(target=writer) for _ in range(threads_n)]
    observer = threading.Thread(target=reader)
    for t in workers:
        t.start()
    observer.start()
    start.wait()
    for t in workers:
        t.join()
    stop_reading.set()
    observer.join()

    # Each thread contributed per_thread increments through each route;
    # the four fields split 2 * threads_n * per_thread evenly.
    total = sum(getattr(c, f) for f in fields)
    assert total == 2 * threads_n * per_thread
    expected_each = 2 * threads_n * per_thread // len(fields)
    for f in fields:
        assert getattr(c, f) == expected_each


def test_counts_survive_thread_exit():
    c = Counters()

    def work():
        c.add("traversals", 11)

    t = threading.Thread(target=work)
    t.start()
    t.join()
    assert c.traversals == 11


def test_reset_zeroes_every_shard():
    c = Counters()
    c.add("page_reads", 5)

    def work():
        c.add("page_reads", 7)

    t = threading.Thread(target=work)
    t.start()
    t.join()
    assert c.page_reads == 12
    c.reset()
    assert all(c.snapshot()[f] == 0 for f in COUNTER_FIELDS)


# ------------------------------------------------------- name validation
#
# The regression these lock in: a typo'd counter name used to vanish into
# a dynamically-grown shard key (add) or a silent 0 (read) — a stat could
# be "collected" all run and never reported.  Now both directions raise,
# with a did-you-mean hint, unless the name was explicitly register()ed.


def test_add_with_typo_raises():
    c = Counters()
    with pytest.raises(UnknownCounterError) as exc:
        c.add("page_raeds")
    assert "page_reads" in str(exc.value)  # did-you-mean suggestion
    assert "register" in str(exc.value)  # escape-hatch hint


def test_read_with_typo_raises_attribute_error():
    c = Counters()
    with pytest.raises(AttributeError) as exc:
        _ = c.latch_aquires
    assert "latch_acquires" in str(exc.value)


def test_unknown_counter_error_is_a_key_error():
    # add() callers that caught KeyError before the rename keep working.
    assert issubclass(UnknownCounterError, KeyError)


def test_register_escape_hatch():
    c = Counters()
    c.register("bench_custom_ops")
    c.add("bench_custom_ops", 3)
    assert c.bench_custom_ops == 3
    assert c.snapshot()["bench_custom_ops"] == 3
    # Registration is per-instance: a fresh Counters still rejects it.
    with pytest.raises(UnknownCounterError):
        Counters().add("bench_custom_ops")


def test_register_rejects_bad_names():
    c = Counters()
    with pytest.raises(ValueError):
        c.register("")
    with pytest.raises(ValueError):
        c.register("_private")


def test_register_is_idempotent_and_static_names_are_noop():
    c = Counters()
    c.register("bench_custom_ops")
    c.register("bench_custom_ops")
    c.register("page_reads")  # already static: fine, no effect
    c.add("bench_custom_ops")
    assert c.bench_custom_ops == 1


def test_reset_preserves_registered_names():
    c = Counters()
    c.register("bench_custom_ops")
    c.add("bench_custom_ops", 9)
    c.reset()
    assert c.bench_custom_ops == 0
    c.add("bench_custom_ops", 2)  # still registered after reset
    assert c.bench_custom_ops == 2


def test_registered_name_visible_across_threads():
    c = Counters()
    c.register("bench_custom_ops")

    def work():
        c.add("bench_custom_ops", 5)

    t = threading.Thread(target=work)
    t.start()
    t.join()
    c.add("bench_custom_ops", 1)
    assert c.bench_custom_ops == 6
