"""The no-I/O-under-lock AST lint (tools/lint_no_io_under_lock.py).

The lint is the static-analysis form of the buffer pool's promise that
every physical disk call runs with the shard lock released.  These tests
pin its semantics: direct disk calls under a lock-ish ``with`` are
violations, the ``_io_unlocked`` escape hatch is honored, ``retrying``
is *not* an escape hatch, and the real storage tree is clean.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_no_io_under_lock import check_file, check_source  # noqa: E402


def violations(source: str) -> list[str]:
    return [message for _lineno, message in check_source(source)]


def test_disk_call_under_self_lock_is_flagged():
    src = (
        "class Pool:\n"
        "    def flush(self, pid, image):\n"
        "        with self._lock:\n"
        "            self.disk.write(pid, image)\n"
    )
    assert len(violations(src)) == 1


def test_disk_call_under_bare_name_shard_is_flagged():
    # Bare-name context managers in storage/ are shard lock scopes; the
    # lint errs broad so a renamed shard variable cannot slip past it.
    src = (
        "def f(self, shard, pid):\n"
        "    with shard:\n"
        "        return self.disk.read(pid)\n"
    )
    assert len(violations(src)) == 1


def test_deeply_nested_disk_call_is_flagged():
    src = (
        "def f(self, pids):\n"
        "    with self._cond:\n"
        "        for pid in pids:\n"
        "            if pid:\n"
        "                x = [self.disk.read(p) for p in pids]\n"
    )
    assert len(violations(src)) == 1


def test_io_unlocked_lambda_is_exempt():
    src = (
        "def f(self, shard, pid):\n"
        "    with shard:\n"
        "        return self._io_unlocked(shard, lambda: self.disk.read(pid))\n"
    )
    assert violations(src) == []


def test_retrying_lambda_is_not_exempt():
    # retrying() runs its callable on the current thread under whatever
    # locks are held — it must not launder a disk call.
    src = (
        "def f(self, pid, image):\n"
        "    with self._lock:\n"
        "        self.retrying(lambda: self.disk.write(pid, image))\n"
    )
    assert len(violations(src)) == 1


def test_disk_call_outside_any_with_is_clean():
    src = (
        "def f(self, pid):\n"
        "    image = self.disk.read(pid)\n"
        "    with self._lock:\n"
        "        return image\n"
    )
    assert violations(src) == []


def test_non_disk_call_under_lock_is_clean():
    src = (
        "def f(self, pid):\n"
        "    with self._lock:\n"
        "        return self.buffer.fetch(pid)\n"
    )
    assert violations(src) == []


def test_storage_tree_is_clean():
    storage = REPO_ROOT / "src" / "repro" / "storage"
    failures = []
    for path in sorted(storage.rglob("*.py")):
        failures.extend(check_file(path))
    assert failures == []
