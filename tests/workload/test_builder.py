"""Workload builder tests: bulk load fills, decluster, thinning."""

import pytest

from repro import Engine
from repro.errors import ReproError
from repro.workload import (
    build_by_inserts,
    bulk_load,
    declustering_metric,
    keys_for_config,
    thin_out,
)


@pytest.fixture
def engine():
    return Engine(buffer_capacity=4096)


def test_bulk_load_exact_fill(engine):
    keys, klen = keys_for_config("int4", 20000)
    index = bulk_load(engine, keys, klen, fill=0.5)
    stats = index.verify()
    assert stats.rows == 20000
    assert 0.45 <= stats.leaf_fill <= 0.55  # the Table 1 precondition


def test_bulk_load_full_fill(engine):
    keys, klen = keys_for_config("int4", 10000)
    index = bulk_load(engine, keys, klen, fill=1.0)
    assert index.verify().leaf_fill > 0.9


def test_bulk_load_is_clustered(engine):
    keys, klen = keys_for_config("int4", 20000)
    index = bulk_load(engine, keys, klen, fill=0.5)
    assert declustering_metric(index) < 1.3


def test_bulk_load_contents_sorted(engine):
    keys, klen = keys_for_config("int4", 3000)
    index = bulk_load(engine, keys, klen)
    got = [k for k, _ in index.contents()]
    assert got == sorted(keys)


def test_bulk_load_rejects_duplicates(engine):
    with pytest.raises(ReproError):
        bulk_load(engine, [b"aaaa", b"aaaa"], 4)


def test_bulk_load_empty(engine):
    index = bulk_load(engine, [], 4)
    assert index.contents() == []


def test_bulk_load_survives_crash(engine):
    keys, klen = keys_for_config("int4", 5000)
    index = bulk_load(engine, keys, klen, fill=0.5)
    engine.crash()
    engine.recover()
    index = engine.index(1)
    assert index.verify().rows == 5000


def test_build_by_inserts_declusters(engine):
    keys, klen = keys_for_config("int4", 8000)
    index = build_by_inserts(engine, keys, klen, shuffled=True, seed=1)
    assert declustering_metric(index) > 1.5  # scattered on disk
    assert index.verify().rows == 8000


def test_build_by_inserts_sequential(engine):
    keys, klen = keys_for_config("int4", 3000)
    index = build_by_inserts(engine, keys, klen, shuffled=False)
    stats = index.verify()
    # Ascending inserts split 50/50: utilization lands near one half.
    assert 0.4 <= stats.leaf_fill <= 0.65


def test_thin_out_stride(engine):
    keys, klen = keys_for_config("int4", 4000)
    index = build_by_inserts(engine, keys, klen, shuffled=True)
    survivors = thin_out(index, keys, keep_one_in=2)
    stats = index.verify()
    assert stats.rows == len(survivors) == 2000


def test_thin_out_random(engine):
    keys, klen = keys_for_config("int4", 4000)
    index = build_by_inserts(engine, keys, klen, shuffled=True)
    survivors = thin_out(index, keys, keep_one_in=4, seed=3)
    assert index.verify().rows == len(survivors) == 1000
