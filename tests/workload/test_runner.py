"""MixedWorkload driver tests."""

from repro import Engine
from repro.workload import MixedWorkload
from tests.conftest import intkey


def test_mixed_workload_runs_and_counts():
    engine = Engine(buffer_capacity=2048)
    index = engine.create_index(key_len=4)
    for k in range(0, 2000, 2):
        index.insert(intkey(k), k)
    workload = MixedWorkload(
        index, intkey, key_count=2000, threads=3, write_fraction=0.7,
    )
    stats = workload.run_for(0.5)
    assert stats.errors == []
    assert stats.operations > 0
    assert stats.duration_seconds >= 0.5
    assert stats.ops_per_second > 0
    index.verify()


def test_writers_confined_to_odd_ordinals():
    engine = Engine(buffer_capacity=2048)
    index = engine.create_index(key_len=4)
    for k in range(0, 2000, 2):
        index.insert(intkey(k), k)
    workload = MixedWorkload(
        index, intkey, key_count=2000, threads=2, write_fraction=1.0,
    )
    workload.run_for(0.3)
    # Even keys are untouched.
    for k in range(0, 2000, 2):
        assert index.contains(intkey(k), k)


def test_read_only_workload():
    engine = Engine(buffer_capacity=2048)
    index = engine.create_index(key_len=4)
    for k in range(0, 1000):
        index.insert(intkey(k), k)
    before = index.contents()
    workload = MixedWorkload(
        index, intkey, key_count=1000, threads=2, write_fraction=0.0,
    )
    stats = workload.run_for(0.3)
    assert stats.errors == []
    assert stats.scans > 0
    assert stats.inserts == stats.deletes == 0
    assert index.contents() == before


def test_stuck_worker_reported_not_hung():
    """A worker that never observes the stop flag must not hang stop():
    the join times out and the worker is reported in stats.errors."""
    import threading

    engine = Engine(buffer_capacity=2048)
    index = engine.create_index(key_len=4)
    for k in range(0, 200, 2):
        index.insert(intkey(k), k)
    release = threading.Event()
    workload = MixedWorkload(
        index, intkey, key_count=200, threads=2, write_fraction=0.5,
        before_op=release.wait,  # workers block here forever
    )
    workload.start()
    try:
        stats = workload.stop(join_timeout=0.2)
    finally:
        release.set()  # let the daemon threads exit
    stuck = [e for e in stats.errors if e.startswith("stuck:")]
    assert len(stuck) == 2
    assert "did not stop within 0.2s" in stuck[0]


def test_stop_joins_cleanly_within_timeout():
    engine = Engine(buffer_capacity=2048)
    index = engine.create_index(key_len=4)
    for k in range(0, 200, 2):
        index.insert(intkey(k), k)
    workload = MixedWorkload(
        index, intkey, key_count=200, threads=2, write_fraction=0.5,
    )
    stats = workload.run_for(0.1, join_timeout=10.0)
    assert stats.errors == []


def test_latency_percentiles_nearest_rank():
    from repro.workload.runner import OltpStats, _percentiles_ms

    samples = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
    pct = _percentiles_ms(samples)
    assert pct == {"p50": 50.0, "p95": 95.0, "p99": 99.0}
    stats = OltpStats(latency_samples={"insert": samples, "scan": [0.002]})
    out = stats.latency_percentiles()
    assert out["insert"]["p95"] == 95.0
    assert out["scan"] == {"p50": 2.0, "p95": 2.0, "p99": 2.0}
    # "all" merges every op class.
    assert out["all"]["p99"] == 99.0


def test_latency_percentiles_empty_stats():
    """No samples at all: every standard class (and ``all``) is still
    present with the exact p50/p95/p99 key set, all zeros — callers can
    index without existence checks."""
    from repro.workload.runner import OltpStats

    out = OltpStats().latency_percentiles()
    assert set(out) == {"insert", "delete", "scan", "all"}
    for cls in out.values():
        assert cls == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_latency_percentiles_single_sample():
    from repro.workload.runner import OltpStats

    stats = OltpStats(latency_samples={"scan": [0.004]})
    out = stats.latency_percentiles()
    assert set(out) == {"insert", "delete", "scan", "all"}
    # One sample is its own p50 = p95 = p99.
    assert out["scan"] == {"p50": 4.0, "p95": 4.0, "p99": 4.0}
    assert out["all"] == {"p50": 4.0, "p95": 4.0, "p99": 4.0}
    # Classes with no samples report zeros, same key set.
    assert out["insert"] == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_latency_percentiles_nonstandard_class_included():
    from repro.workload.runner import OltpStats

    stats = OltpStats(latency_samples={"lookup": [0.001, 0.003]})
    out = stats.latency_percentiles()
    assert set(out) == {"insert", "delete", "scan", "lookup", "all"}
    assert out["lookup"]["p99"] == 3.0
    assert out["all"]["p99"] == 3.0


def test_latency_percentiles_exactly_three_keys():
    from repro.workload.runner import OltpStats

    stats = OltpStats(
        latency_samples={"insert": [0.002, 0.001], "delete": [], "scan": []}
    )
    for cls in stats.latency_percentiles().values():
        assert set(cls) == {"p50", "p95", "p99"}


def test_workload_collects_latency_samples():
    engine = Engine(buffer_capacity=2048)
    index = engine.create_index(key_len=4)
    for k in range(0, 500, 2):
        index.insert(intkey(k), k)
    workload = MixedWorkload(
        index, intkey, key_count=500, threads=2, write_fraction=0.5,
    )
    stats = workload.run_for(0.2, join_timeout=10.0)
    assert stats.errors == []
    total = sum(len(v) for v in stats.latency_samples.values())
    # One sample per *attempted* op; the op tallies count only effective
    # ones (a duplicate insert or missing-key delete is sampled, not
    # tallied), so samples can only exceed the tallies.
    assert total >= stats.operations > 0
    pct = stats.latency_percentiles()
    assert pct["all"]["p50"] <= pct["all"]["p95"] <= pct["all"]["p99"]
