"""Key generator tests: ordering, determinism, and the Table 1 separator
targets (avg nonleaf row ~10 B for int4, ~20 B for wide40)."""

from repro.btree import keys as K
from repro.workload import keygen


def test_int4_keys_ordered():
    keys = [keygen.int4_key(i) for i in range(1000)]
    assert keys == sorted(keys)
    assert all(len(k) == 4 for k in keys)


def test_int4_roundtrip():
    assert keygen.int4_value(keygen.int4_key(123456)) == 123456


def test_wide40_length_and_determinism():
    a = keygen.wide40_key(42)
    b = keygen.wide40_key(42)
    assert a == b
    assert len(a) == 40


def test_wide40_groups_share_prefix():
    a = keygen.wide40_key(0)
    b = keygen.wide40_key(1)
    assert a[:13] == b[:13]
    far = keygen.wide40_key(10 * keygen.WIDE40_GROUP_SIZE)
    assert a[:13] != far[:13]


def test_wide40_unique():
    keys = {keygen.wide40_key(i) for i in range(5000)}
    assert len(keys) == 5000


def test_keys_for_config():
    keys, klen = keygen.keys_for_config("int4", 10)
    assert klen == 4 and len(keys) == 10
    keys, klen = keygen.keys_for_config("wide40", 10)
    assert klen == 40 and len(keys) == 10


def test_keys_for_config_rejects_unknown():
    import pytest

    with pytest.raises(ValueError):
        keygen.keys_for_config("huge", 10)


def _avg_nonleaf_row(config: str, count: int = 4000) -> float:
    """Average separator-based nonleaf row size for sorted adjacent units."""
    keys, klen = keygen.keys_for_config(config, count)
    units = sorted(
        K.leaf_unit(key, i, klen) for i, key in enumerate(keys)
    )
    # Sample separators at leaf-boundary-like strides.
    seps = [
        K.separator(units[i - 1], units[i])
        for i in range(40, len(units), 40)
    ]
    child_and_slot = 4 + 2
    return sum(len(s) for s in seps) / len(seps) + child_and_slot


def test_int4_average_nonleaf_row_matches_paper():
    # Paper Table 1: key size 4 -> avg nonleaf row ~10 bytes.
    avg = _avg_nonleaf_row("int4")
    assert 8 <= avg <= 11, avg


def test_wide40_average_nonleaf_row_matches_paper():
    # Paper Table 1: key size 40 with suffix compression -> ~20 bytes.
    avg = _avg_nonleaf_row("wide40")
    assert 17 <= avg <= 24, avg
