"""Shrink top-action tests: page removal, cascades, root collapse."""

from repro.storage.page import PageFlag
from repro.storage.page_manager import PageState
from tests.conftest import contents_as_ints, fill_index, intkey


def test_emptying_a_leaf_removes_it(engine, index):
    fill_index(index, 400, seed=None)
    before = index.verify()
    # Delete one whole leaf's key range (the lowest keys).
    for k in range(0, 150):
        index.delete(intkey(k), k)
    after = index.verify()
    assert after.leaf_pages < before.leaf_pages
    assert contents_as_ints(index) == list(range(150, 400))


def test_shrunk_pages_are_freed(engine, index):
    fill_index(index, 400, seed=None)
    leaves_before = set(index.verify().leaf_page_ids)
    for k in range(0, 150):
        index.delete(intkey(k), k)
    leaves_after = set(index.verify().leaf_page_ids)
    for pid in leaves_before - leaves_after:
        assert engine.ctx.page_manager.state(pid) is PageState.FREE


def test_shrink_updates_chain(engine, index):
    fill_index(index, 600, seed=None)
    # Carve a hole in the middle of the key space.
    for k in range(200, 400):
        index.delete(intkey(k), k)
    index.verify()  # checks prev/next consistency
    got = contents_as_ints(index)
    assert got == list(range(200)) + list(range(400, 600))


def test_shrink_first_child_strips_separator(engine, index):
    fill_index(index, 500, seed=None)
    # Remove the leftmost leaf: its parent's new first entry must be
    # keyless — verify() enforces that invariant.
    for k in range(0, 120):
        index.delete(intkey(k), k)
    index.verify()


def test_cascading_shrink_collapses_root(engine, index):
    fill_index(index, 800, seed=None)
    assert index.height() >= 2
    for k in range(800):
        index.delete(intkey(k), k)
    stats = index.verify()
    assert stats.height == 1
    assert stats.rows == 0


def test_root_leaf_never_shrinks(engine, index):
    index.insert(intkey(1), 1)
    index.delete(intkey(1), 1)
    assert engine.ctx.page_manager.state(index.root_page_id) is (
        PageState.ALLOCATED
    )
    stats = index.verify()
    assert stats.leaf_pages == 1


def test_no_bits_or_locks_after_shrinks(engine, index):
    fill_index(index, 500, seed=None)
    for k in range(0, 250):
        index.delete(intkey(k), k)
    assert engine.ctx.locks._table == {}
    for pid in engine.ctx.page_manager.allocated_pages():
        page = engine.ctx.buffer.fetch(pid)
        assert page.flags == PageFlag.NONE
        engine.ctx.buffer.unpin(pid)


def test_reinsert_into_shrunk_range(index):
    fill_index(index, 400, seed=None)
    for k in range(100, 300):
        index.delete(intkey(k), k)
    for k in range(150, 250):
        index.insert(intkey(k), k)
    expected = sorted(
        set(range(400)) - set(range(100, 300)) | set(range(150, 250))
    )
    assert contents_as_ints(index) == expected
    index.verify()
