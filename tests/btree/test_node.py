"""Unit tests for leaf/nonleaf page views (repro.btree.node)."""

import pytest

from repro.btree import node
from repro.errors import TreeStructureError
from repro.stats.counters import Counters
from repro.storage.page import Page, PageType


@pytest.fixture
def counters() -> Counters:
    return Counters()


def leaf_page(units: list[bytes]) -> Page:
    page = Page(1)
    page.page_type = PageType.LEAF
    for u in units:
        page.append_row(u)
    return page


def nonleaf_page(entries: list[tuple[bytes, int]]) -> Page:
    page = Page(2)
    page.page_type = PageType.NONLEAF
    page.level = 1
    for key, child in entries:
        page.append_row(node.encode_entry(key, child))
    return page


def test_entry_roundtrip():
    row = node.encode_entry(b"sep", 42)
    assert node.decode_entry(row) == (b"sep", 42)
    assert node.entry_key(row) == b"sep"
    assert node.entry_child(row) == 42


def test_entry_keyless_first_child():
    row = node.encode_entry(b"", 7)
    assert node.entry_key(row) == b""
    assert node.entry_child(row) == 7


def test_strip_entry_key():
    row = node.encode_entry(b"verylongseparator", 9)
    stripped = node.strip_entry_key(row)
    assert node.entry_key(stripped) == b""
    assert node.entry_child(stripped) == 9


def test_decode_entry_rejects_short():
    import repro.errors as errors

    with pytest.raises(errors.BTreeError):
        node.decode_entry(b"ab")


def test_leaf_search_found_and_missing(counters):
    page = leaf_page([b"aa", b"cc", b"ee"])
    assert node.leaf_search(page, b"cc", counters) == (1, True)
    assert node.leaf_search(page, b"bb", counters) == (1, False)
    assert node.leaf_search(page, b"zz", counters) == (3, False)


def test_leaf_search_compares_unit_prefix(counters):
    # Rows may carry payload bytes after the searched unit (footnote 2);
    # the search compares only the unit-width prefix.
    page = leaf_page([b"aa-payload1", b"cc-payload2"])
    assert node.leaf_search(page, b"aa", counters) == (0, True)
    assert node.leaf_search(page, b"cc", counters) == (1, True)
    assert node.leaf_search(page, b"bb", counters) == (1, False)


def test_leaf_search_counts_comparisons(counters):
    page = leaf_page([bytes([i]) for i in range(64)])
    node.leaf_search(page, bytes([40]), counters)
    assert 1 <= counters.key_comparisons <= 8


def test_leaf_low_high(counters):
    page = leaf_page([b"aa", b"zz"])
    assert node.leaf_low_unit(page) == b"aa"
    assert node.leaf_high_unit(page) == b"zz"
    with pytest.raises(TreeStructureError):
        node.leaf_low_unit(leaf_page([]))


def test_child_search_routes_by_separator(counters):
    page = nonleaf_page([(b"", 10), (b"m", 20), (b"t", 30)])
    assert node.child_search(page, b"a", counters) == (0, 10)
    assert node.child_search(page, b"m", counters) == (1, 20)  # Ki <= unit
    assert node.child_search(page, b"n", counters) == (1, 20)
    assert node.child_search(page, b"t", counters) == (2, 30)
    assert node.child_search(page, b"z", counters) == (2, 30)


def test_child_search_single_child(counters):
    page = nonleaf_page([(b"", 10)])
    assert node.child_search(page, b"anything", counters) == (0, 10)


def test_child_search_rejects_leaf(counters):
    with pytest.raises(TreeStructureError):
        node.child_search(leaf_page([b"aa"]), b"a", counters)


def test_child_search_rejects_empty(counters):
    page = Page(3)
    page.page_type = PageType.NONLEAF
    with pytest.raises(TreeStructureError):
        node.child_search(page, b"a", counters)


def test_entry_insert_pos_never_before_first(counters):
    page = nonleaf_page([(b"", 10), (b"m", 20)])
    assert node.entry_insert_pos(page, b"a", counters) == 1
    assert node.entry_insert_pos(page, b"m", counters) == 2
    assert node.entry_insert_pos(page, b"z", counters) == 2


def test_find_child_entry(counters):
    page = nonleaf_page([(b"", 10), (b"m", 20), (b"t", 30)])
    assert node.find_child_entry(page, 20) == 1
    with pytest.raises(TreeStructureError):
        node.find_child_entry(page, 99)


def test_child_ids_and_entries(counters):
    page = nonleaf_page([(b"", 10), (b"m", 20)])
    assert node.child_ids(page) == [10, 20]
    assert node.entries(page) == [(b"", 10), (b"m", 20)]


def test_low_key_leaf_and_nonleaf(counters):
    assert node.low_key(leaf_page([b"aa", b"bb"])) == b"aa"
    assert node.low_key(nonleaf_page([(b"", 1), (b"k", 2)])) == b"k"
    with pytest.raises(TreeStructureError):
        node.low_key(nonleaf_page([(b"", 1)]))
