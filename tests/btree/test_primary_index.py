"""Primary-index rows (paper footnote 2): data payloads ride in the leaf
after the (key, rowid) unit and move opaquely through splits, shrinks,
rebuilds, and recovery."""

import random

import pytest

from repro import Engine, OnlineRebuild, RebuildConfig, offline_rebuild
from repro.errors import DuplicateKeyError
from tests.conftest import intkey


def payload_for(k: int) -> bytes:
    return (b"record-%06d-" % k) + bytes([k % 251]) * (k % 40)


@pytest.fixture
def primary(engine):
    return engine.create_index(key_len=4)


def fill_primary(index, count, seed=4):
    order = list(range(count))
    random.Random(seed).shuffle(order)
    for k in order:
        index.insert(intkey(k), k, payload=payload_for(k))
    return order


def test_get_returns_payload(primary):
    primary.insert(intkey(7), 7, payload=b"hello world")
    assert primary.get(intkey(7), 7) == b"hello world"
    assert primary.get(intkey(8), 8) is None


def test_secondary_rows_have_empty_payload(primary):
    primary.insert(intkey(7), 7)
    assert primary.get(intkey(7), 7) == b""


def test_duplicate_detection_ignores_payload(primary):
    primary.insert(intkey(7), 7, payload=b"one")
    with pytest.raises(DuplicateKeyError):
        primary.insert(intkey(7), 7, payload=b"two")


def test_delete_by_unit_removes_payload_row(primary):
    primary.insert(intkey(7), 7, payload=b"data")
    primary.delete(intkey(7), 7)
    assert primary.get(intkey(7), 7) is None


def test_payloads_survive_splits(primary):
    fill_primary(primary, 1200)
    primary.verify()
    for k in (0, 617, 1199):
        assert primary.get(intkey(k), k) == payload_for(k)


def test_scan_with_payloads(primary):
    fill_primary(primary, 300)
    rows = list(primary.scan(intkey(10), intkey(12), with_payload=True))
    assert rows == [
        (intkey(k), k, payload_for(k)) for k in (10, 11, 12)
    ]
    # The payload-less scan still yields pairs.
    pairs = list(primary.scan(intkey(10), intkey(12)))
    assert pairs == [(intkey(k), k) for k in (10, 11, 12)]


def test_payloads_survive_shrinks(primary):
    fill_primary(primary, 800)
    for k in range(0, 400):
        primary.delete(intkey(k), k)
    primary.verify()
    for k in (400, 555, 799):
        assert primary.get(intkey(k), k) == payload_for(k)


def test_online_rebuild_moves_payloads(primary):
    fill_primary(primary, 2000)
    for k in range(0, 2000, 2):
        primary.delete(intkey(k), k)
    before = primary.contents_with_payloads()
    OnlineRebuild(primary, RebuildConfig(ntasize=8, xactsize=32)).run()
    assert primary.contents_with_payloads() == before
    stats = primary.verify()
    assert stats.leaf_fill > 0.9
    assert primary.get(intkey(1001), 1001) == payload_for(1001)


def test_offline_rebuild_moves_payloads(primary):
    fill_primary(primary, 1000)
    for k in range(0, 1000, 2):
        primary.delete(intkey(k), k)
    before = primary.contents_with_payloads()
    offline_rebuild(primary)
    assert primary.contents_with_payloads() == before
    primary.verify()


def test_payloads_survive_crash_recovery(engine, primary):
    fill_primary(primary, 600)
    before = primary.contents_with_payloads()
    engine.crash()
    engine.recover()
    primary = engine.index(1)
    assert primary.contents_with_payloads() == before
    primary.verify()


def test_loser_txn_payload_rows_undone(engine, primary):
    fill_primary(primary, 400)
    txn = engine.ctx.txns.begin()
    primary.insert(intkey(9000), 9000, txn=txn, payload=b"uncommitted")
    primary.delete(intkey(5), 5, txn=txn)
    engine.ctx.log.flush_all()
    engine.crash()
    engine.recover()
    primary = engine.index(1)
    assert primary.get(intkey(9000), 9000) is None
    assert primary.get(intkey(5), 5) == payload_for(5)
    primary.verify()


def test_crash_mid_rebuild_with_payloads(engine, primary):
    from repro.concurrency.syncpoints import CrashPoint

    fill_primary(primary, 1500)
    for k in range(0, 1500, 2):
        primary.delete(intkey(k), k)
    before = primary.contents_with_payloads()
    engine.syncpoints.once(
        "rebuild.nta_end",
        lambda ctx: (_ for _ in ()).throw(CrashPoint("boom")),
    )
    with pytest.raises(CrashPoint):
        OnlineRebuild(primary, RebuildConfig(ntasize=8, xactsize=16)).run()
    engine.crash()
    engine.recover()
    primary = engine.index(1)
    assert primary.contents_with_payloads() == before
    primary.verify()


def test_variable_payload_sizes_pack_by_bytes(primary):
    # Large payloads mean fewer rows per page; fill accounting is bytewise.
    for k in range(200):
        primary.insert(intkey(k), k, payload=bytes(300 + (k % 7) * 50))
    stats = primary.verify()
    assert stats.rows == 200
    assert stats.leaf_pages > 30  # a handful of big rows per 2 KB page
    OnlineRebuild(primary, RebuildConfig(ntasize=8, xactsize=32)).run()
    assert primary.verify().rows == 200
