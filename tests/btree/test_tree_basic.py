"""Basic index-manager operations: insert, delete, lookup, scan."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from tests.conftest import contents_as_ints, fill_index, intkey


def test_empty_index(index):
    assert index.contents() == []
    assert not index.contains(intkey(1), 1)
    assert index.lookup(intkey(1)) == []
    stats = index.verify()
    assert stats.height == 1
    assert stats.rows == 0


def test_single_insert_and_lookup(index):
    index.insert(intkey(5), 5)
    assert index.contains(intkey(5), 5)
    assert index.lookup(intkey(5)) == [5]
    assert not index.contains(intkey(5), 6)


def test_duplicate_insert_raises(index):
    index.insert(intkey(5), 5)
    with pytest.raises(DuplicateKeyError):
        index.insert(intkey(5), 5)


def test_same_key_different_rowids_allowed(index):
    index.insert(intkey(5), 1)
    index.insert(intkey(5), 2)
    assert sorted(index.lookup(intkey(5))) == [1, 2]


def test_delete_missing_raises(index):
    with pytest.raises(KeyNotFoundError):
        index.delete(intkey(5), 5)
    index.insert(intkey(5), 5)
    with pytest.raises(KeyNotFoundError):
        index.delete(intkey(5), 99)


def test_insert_delete_roundtrip(index):
    index.insert(intkey(5), 5)
    index.delete(intkey(5), 5)
    assert not index.contains(intkey(5), 5)
    assert index.contents() == []


def test_many_inserts_sorted_contents(index):
    fill_index(index, 1000)
    assert contents_as_ints(index) == list(range(1000))
    stats = index.verify()
    assert stats.rows == 1000
    assert stats.height >= 2


def test_ascending_inserts(index):
    fill_index(index, 500, seed=None)
    assert contents_as_ints(index) == list(range(500))
    index.verify()


def test_descending_inserts(index):
    for k in reversed(range(500)):
        index.insert(intkey(k), k)
    assert contents_as_ints(index) == list(range(500))
    index.verify()


def test_scan_full_range(index):
    fill_index(index, 300)
    got = [int.from_bytes(k, "big") for k, r in index.scan()]
    assert got == list(range(300))


def test_scan_bounds_inclusive(index):
    fill_index(index, 100)
    got = [int.from_bytes(k, "big") for k, _ in index.scan(intkey(10), intkey(20))]
    assert got == list(range(10, 21))


def test_scan_returns_rowids(index):
    fill_index(index, 50)
    pairs = list(index.scan(intkey(5), intkey(7)))
    assert pairs == [(intkey(k), k) for k in (5, 6, 7)]


def test_scan_empty_range(index):
    fill_index(index, 50)
    assert list(index.scan(intkey(60), intkey(70))) == []


def test_scan_single_point(index):
    fill_index(index, 50)
    assert list(index.scan(intkey(7), intkey(7))) == [(intkey(7), 7)]


def test_scan_abandoned_midway_releases_cleanly(index):
    fill_index(index, 300)
    it = index.scan()
    for _ in range(5):
        next(it)
    it.close()
    # Everything still works afterwards.
    index.insert(intkey(9999), 9999)
    index.verify()


def test_interleaved_inserts_deletes(index):
    fill_index(index, 400)
    for k in range(0, 400, 3):
        index.delete(intkey(k), k)
    for k in range(400, 500):
        index.insert(intkey(k), k)
    expected = sorted(
        [k for k in range(400) if k % 3 != 0] + list(range(400, 500))
    )
    assert contents_as_ints(index) == expected
    index.verify()


def test_delete_everything_leaves_empty_valid_tree(index):
    fill_index(index, 600)
    for k in range(600):
        index.delete(intkey(k), k)
    stats = index.verify()
    assert stats.rows == 0
    assert stats.height == 1  # root collapsed back to an empty leaf
    # And the index remains usable.
    index.insert(intkey(1), 1)
    assert index.contains(intkey(1), 1)


def test_explicit_txn_commit(engine, index):
    txn = engine.ctx.txns.begin()
    index.insert(intkey(1), 1, txn=txn)
    index.insert(intkey(2), 2, txn=txn)
    engine.ctx.txns.commit(txn)
    assert contents_as_ints(index) == [1, 2]


def test_explicit_txn_abort_rolls_back(engine, index):
    index.insert(intkey(1), 1)
    txn = engine.ctx.txns.begin()
    index.insert(intkey(2), 2, txn=txn)
    index.delete(intkey(1), 1, txn=txn)
    engine.ctx.txns.abort(txn)
    assert contents_as_ints(index) == [1]
    index.verify()


def test_explicit_txn_abort_after_splits(engine, index):
    fill_index(index, 200, seed=None)
    txn = engine.ctx.txns.begin()
    for k in range(1000, 1500):
        index.insert(intkey(k), k, txn=txn)
    engine.ctx.txns.abort(txn)
    assert contents_as_ints(index) == list(range(200))
    index.verify()  # splits persist but rows are gone


def test_wide_keys(engine):
    index = engine.create_index(key_len=32)
    keys = [b"%031d" % i + b"k" for i in range(200)]
    for i, key in enumerate(keys):
        index.insert(key[:32], i)
    index.verify()
    assert index.contains(keys[7][:32], 7)
