"""Unit tests for traversal: crabbing, modes, side entries, and the
§2.6.1 retraverse-from-safe-page optimization."""

import pytest

from repro.btree import keys as K
from repro.btree import node
from repro.btree.traversal import AccessMode, Traversal
from repro.concurrency.latch import LatchMode
from repro.errors import TreeStructureError
from repro.storage.page import PageFlag, PageType
from tests.conftest import fill_index, intkey


def unit(i: int) -> bytes:
    return K.leaf_unit(intkey(i), i, 4)


@pytest.fixture(scope="module")
def tall_engine():
    from repro import Engine

    engine = Engine(buffer_capacity=4096, lock_timeout=15.0)
    index = engine.create_index(key_len=4)
    fill_index(index, 20000, seed=None)
    assert index.height() >= 3
    return engine


@pytest.fixture
def engine(tall_engine):
    return tall_engine


@pytest.fixture
def tall_index(tall_engine):
    return tall_engine.index(1)


def release(engine, page):
    engine.ctx.release_page(page.page_id)


def test_reader_reaches_correct_leaf(engine, tall_index):
    txn = engine.ctx.txns.begin()
    trav = Traversal(engine.ctx, tall_index)
    for probe in (0, 1234, 5999):
        leaf = trav.traverse(unit(probe), AccessMode.READER, 0, txn)
        assert leaf.page_type is PageType.LEAF
        _pos, found = node.leaf_search(leaf, unit(probe), engine.counters)
        assert found
        assert engine.ctx.latches.holds(leaf.page_id, LatchMode.S)
        release(engine, leaf)
    engine.ctx.txns.commit(txn)


def test_writer_gets_x_latch_at_target(engine, tall_index):
    txn = engine.ctx.txns.begin()
    trav = Traversal(engine.ctx, tall_index)
    leaf = trav.traverse(unit(10), AccessMode.WRITER, 0, txn)
    assert engine.ctx.latches.holds(leaf.page_id, LatchMode.X)
    release(engine, leaf)
    engine.ctx.txns.commit(txn)


def test_traverse_to_intermediate_level(engine, tall_index):
    txn = engine.ctx.txns.begin()
    trav = Traversal(engine.ctx, tall_index)
    page = trav.traverse(unit(3000), AccessMode.WRITER, 1, txn)
    assert page.level == 1
    assert page.page_type is PageType.NONLEAF
    release(engine, page)
    engine.ctx.txns.commit(txn)


def test_traverse_above_root_raises(engine, index):
    index.insert(intkey(1), 1)
    txn = engine.ctx.txns.begin()
    trav = Traversal(engine.ctx, index)
    with pytest.raises(TreeStructureError):
        trav.traverse(unit(1), AccessMode.READER, 5, txn)
    engine.ctx.txns.commit(txn)


def test_no_latches_leak_after_traverse(engine, tall_index):
    txn = engine.ctx.txns.begin()
    trav = Traversal(engine.ctx, tall_index)
    leaf = trav.traverse(unit(42), AccessMode.READER, 0, txn)
    release(engine, leaf)
    assert engine.ctx.latches.held_by_me() == {}
    engine.ctx.txns.commit(txn)


def test_side_entry_redirect(engine, tall_index):
    """A page with OLDPGOFSPLIT redirects matching keys to its sibling."""
    ctx = engine.ctx
    txn = ctx.txns.begin()
    trav = Traversal(ctx, tall_index)
    leaf = trav.traverse(unit(100), AccessMode.READER, 0, txn)
    left_id = leaf.page_id
    right_id = leaf.next_page
    split_at = leaf.rows[len(leaf.rows) // 2]
    ctx.release_page(left_id)

    # Manufacture an in-flight-split state by hand.
    page = ctx.buffer.fetch(left_id)
    page.set_side_entry(split_at, right_id)
    page.set_flag(PageFlag.OLDPGOFSPLIT)
    page.set_flag(PageFlag.SPLIT)
    ctx.buffer.unpin(left_id, dirty=True)

    try:
        # A reader looking for a key >= the side key lands on the sibling.
        found = trav.traverse(split_at, AccessMode.READER, 0, txn)
        assert found.page_id == right_id
        ctx.release_page(right_id)
        # A key below the side key stays on the old page (readers pass
        # the SPLIT bit).
        low = trav.traverse(page.rows[0], AccessMode.READER, 0, txn)
        assert low.page_id == left_id
        ctx.release_page(left_id)
    finally:
        page = ctx.buffer.fetch(left_id)
        page.clear_side_entry()
        page.clear_flag(PageFlag.SPLIT)
        ctx.buffer.unpin(left_id, dirty=True)
        ctx.txns.commit(txn)


def test_remembered_path_reused(engine, tall_index):
    """§2.6.1: a reused Traversal restarts from a safe remembered page, so
    repeated nearby traversals touch far fewer pages than root-to-leaf."""
    ctx = engine.ctx
    txn = ctx.txns.begin()
    trav = Traversal(ctx, tall_index)
    leaf = trav.traverse(unit(3000), AccessMode.READER, 0, txn)
    ctx.release_page(leaf.page_id)
    before = ctx.counters.snapshot()
    for i in range(3001, 3021):
        leaf = trav.traverse(unit(i), AccessMode.READER, 0, txn)
        ctx.release_page(leaf.page_id)
    warm = ctx.counters.diff(before)["pages_visited"]

    fresh_total = 0
    before = ctx.counters.snapshot()
    for i in range(3001, 3021):
        fresh = Traversal(ctx, tall_index)
        leaf = fresh.traverse(unit(i), AccessMode.READER, 0, txn)
        ctx.release_page(leaf.page_id)
    fresh_total = ctx.counters.diff(before)["pages_visited"]
    # Safe-page restarts skip the root for all 20 nearby traversals.
    assert warm < fresh_total
    engine.ctx.txns.commit(txn)


def test_safe_page_rejected_after_shrink_bit(engine, tall_index):
    """A remembered page carrying a SHRINK bit is not safe to restart from."""
    ctx = engine.ctx
    txn = ctx.txns.begin()
    trav = Traversal(ctx, tall_index)
    leaf = trav.traverse(unit(3000), AccessMode.READER, 0, txn)
    ctx.release_page(leaf.page_id)
    # Poison every remembered page with a SHRINK bit.
    poisoned = []
    for pid, _level in trav._path:
        page = ctx.buffer.fetch(pid)
        page.set_flag(PageFlag.SHRINK)
        ctx.buffer.unpin(pid, dirty=True)
        poisoned.append(pid)
    try:
        # The traversal must fall back to the root (which, being the top
        # of the remembered path... is also poisoned — so expect a block
        # would occur; instead verify _try_safe rejects them).
        for pid, level in trav._path:
            assert trav._try_safe(pid, level, unit(3000)) is None
    finally:
        for pid in poisoned:
            page = ctx.buffer.fetch(pid)
            page.clear_flag(PageFlag.SHRINK)
            ctx.buffer.unpin(pid, dirty=True)
        ctx.txns.commit(txn)


def test_safe_page_rejected_on_key_out_of_range(engine, tall_index):
    ctx = engine.ctx
    txn = ctx.txns.begin()
    trav = Traversal(ctx, tall_index)
    leaf = trav.traverse(unit(3000), AccessMode.READER, 0, txn)
    ctx.release_page(leaf.page_id)
    # The deepest remembered page covers keys near 3000, not near 0.
    deepest, level = trav._path[-1]
    assert trav._try_safe(deepest, level, unit(0)) is None
    assert trav._try_safe(deepest, level, unit(3000)) is not None
    ctx.latches.release_all()
    ctx.txns.commit(txn)


def test_safe_page_rejected_after_deallocation(engine, tall_index):
    ctx = engine.ctx
    txn = ctx.txns.begin()
    trav = Traversal(ctx, tall_index)
    leaf = trav.traverse(unit(3000), AccessMode.READER, 0, txn)
    ctx.release_page(leaf.page_id)
    deepest, level = trav._path[-1]
    ctx.page_manager.deallocate(deepest)
    try:
        assert trav._try_safe(deepest, level, unit(3000)) is None
    finally:
        ctx.page_manager.undo_deallocate(deepest)
        ctx.txns.commit(txn)
