"""The structural verifier must catch seeded corruptions."""

import pytest

from repro.btree import node
from repro.errors import TreeStructureError
from repro.storage.page import PageFlag
from tests.conftest import fill_index, intkey


def corrupt_and_expect(engine, index, mutator):
    stats = index.verify()
    mutator(stats)
    with pytest.raises(TreeStructureError):
        index.verify()


def get_page(engine, pid):
    page = engine.ctx.buffer.fetch(pid)
    engine.ctx.buffer.unpin(pid)
    return page


def test_detects_broken_next_link(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        page = get_page(engine, stats.leaf_page_ids[1])
        page.next_page = 999_999 if page.next_page == 0 else 0

    corrupt_and_expect(engine, index, mutate)


def test_detects_broken_prev_link(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        get_page(engine, stats.leaf_page_ids[2]).prev_page = 12345

    corrupt_and_expect(engine, index, mutate)


def test_detects_out_of_order_rows(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        page = get_page(engine, stats.leaf_page_ids[0])
        page.rows[0], page.rows[1] = page.rows[1], page.rows[0]

    corrupt_and_expect(engine, index, mutate)


def test_detects_keyed_first_entry(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        root = get_page(engine, index.root_page_id)
        child = node.entry_child(root.rows[0])
        root.rows[0] = node.encode_entry(b"oops", child)

    corrupt_and_expect(engine, index, mutate)


def test_detects_row_outside_separator_range(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        # Move a huge unit into the leftmost leaf: violates its high bound.
        page = get_page(engine, stats.leaf_page_ids[0])
        page.append_row(b"\xff" * 10)

    corrupt_and_expect(engine, index, mutate)


def test_detects_leftover_protocol_bits(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        get_page(engine, stats.leaf_page_ids[0]).set_flag(PageFlag.SHRINK)

    corrupt_and_expect(engine, index, mutate)


def test_detects_deallocated_reachable_page(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        engine.ctx.page_manager.deallocate(stats.leaf_page_ids[1])

    corrupt_and_expect(engine, index, mutate)


def test_detects_wrong_index_id(engine, index):
    fill_index(index, 600)

    def mutate(stats):
        get_page(engine, stats.leaf_page_ids[0]).index_id = 99

    corrupt_and_expect(engine, index, mutate)


def test_stats_on_healthy_tree(engine, index):
    fill_index(index, 600)
    stats = index.verify()
    assert stats.rows == 600
    assert stats.leaf_pages == len(stats.leaf_page_ids)
    assert 0 < stats.leaf_fill <= 1.0
    assert stats.height >= 2
