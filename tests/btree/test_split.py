"""Split top-action tests: leaf splits, root growth, multilevel trees,
protocol-bit hygiene."""

from repro.storage.page import PageFlag, PageType
from tests.conftest import contents_as_ints, fill_index, intkey


def leaf_count(index) -> int:
    return index.verify().leaf_pages


def test_first_split_grows_root_in_place(engine, index):
    root_before = index.root_page_id
    k = 0
    while index.height() == 1:
        index.insert(intkey(k), k)
        k += 1
    assert index.root_page_id == root_before  # stable root id
    stats = index.verify()
    assert stats.height == 2
    assert stats.leaf_pages == 2
    assert contents_as_ints(index) == list(range(k))


def test_split_preserves_all_rows(index):
    fill_index(index, 2000)
    assert contents_as_ints(index) == list(range(2000))


def test_split_distributes_rows(index):
    fill_index(index, 400, seed=0)
    stats = index.verify()
    # Random inserts: every leaf between ~40% and 100% full.
    assert stats.leaf_pages >= 2
    assert 0.4 <= stats.leaf_fill <= 1.0


def test_three_level_tree(engine):
    index = engine.create_index(key_len=16)
    for i in range(9000):
        index.insert(b"%016d" % i, i)
    stats = index.verify()
    assert stats.height == 3
    assert stats.rows == 9000
    assert index.contains(b"%016d" % 4567, 4567)


def test_no_protocol_bits_left_after_splits(engine, index):
    fill_index(index, 1500)
    for pid in engine.ctx.page_manager.allocated_pages():
        page = engine.ctx.buffer.fetch(pid)
        assert page.flags == PageFlag.NONE, f"page {pid} kept {page.flags!r}"
        assert page.side_page == 0
        engine.ctx.buffer.unpin(pid)


def test_no_address_locks_left_after_splits(engine, index):
    fill_index(index, 1500)
    # Any leftover address lock would show in the lock table.
    assert engine.ctx.locks._table == {}


def test_leaf_chain_links_after_splits(index):
    fill_index(index, 1200)
    index.verify()  # verifies prev/next mutual consistency


def test_nonleaf_first_entry_keyless_after_splits(engine, index):
    fill_index(index, 3000)
    from repro.btree import node

    for pid in engine.ctx.page_manager.allocated_pages():
        page = engine.ctx.buffer.fetch(pid)
        if page.page_type is PageType.NONLEAF and page.nrows:
            assert node.entry_key(page.rows[0]) == b""
        engine.ctx.buffer.unpin(pid)


def test_split_point_balances_bytes(index):
    # Ascending fill: the engine still moves at least one row per split,
    # so both sides of every split are non-empty and ordered.
    fill_index(index, 800, seed=None)
    stats = index.verify()
    assert stats.leaf_pages > 2


def test_appending_after_random_fill(index):
    fill_index(index, 500, seed=3)
    for k in range(10_000, 10_300):
        index.insert(intkey(k), k)
    expected = sorted(list(range(500)) + list(range(10_000, 10_300)))
    assert contents_as_ints(index) == expected
