"""Scan behavior under §2.5 semantics: latch drops between rows,
repositioning after concurrent structural changes."""

from tests.conftest import contents_as_ints, fill_index, intkey


def ints(pairs):
    return [int.from_bytes(k, "big") for k, _ in pairs]


def test_scan_sees_consistent_prefix_under_interleaved_deletes(index):
    fill_index(index, 200)
    it = index.scan()
    got = [ints([next(it)])[0] for _ in range(10)]
    # Delete far ahead of the cursor; the scan must skip them.
    for k in range(100, 150):
        index.delete(intkey(k), k)
    got += ints(it)
    expected = list(range(100)) + list(range(150, 200))
    assert got == expected


def test_scan_skips_rows_deleted_at_cursor(index):
    fill_index(index, 100)
    it = index.scan()
    got = [ints([next(it)])[0] for _ in range(5)]  # 0..4 returned
    index.delete(intkey(5), 5)  # right where the cursor stands
    got += ints(it)
    assert got == [k for k in range(100) if k != 5]


def test_scan_sees_rows_inserted_ahead(index):
    fill_index(index, 100)
    it = index.scan()
    got = [ints([next(it)])[0] for _ in range(5)]
    index.insert(intkey(50), 999_999)  # same key, new rowid, ahead
    got += ints(it)
    assert got.count(50) == 2


def test_scan_survives_page_split_under_cursor(index):
    fill_index(index, 300, seed=None)
    it = index.scan()
    got = [ints([next(it)])[0] for _ in range(3)]
    # Insert a burst right at the cursor's page to force splits there.
    for k in range(300, 500):
        index.insert(intkey(k), k)
    got += ints(it)
    assert got == list(range(500))


def test_scan_survives_page_shrink_under_cursor(index):
    fill_index(index, 400, seed=None)
    it = index.scan()
    got = [ints([next(it)])[0] for _ in range(3)]
    # Empty the pages just ahead of the cursor.
    for k in range(10, 200):
        index.delete(intkey(k), k)
    got += ints(it)
    assert got == list(range(10)) + list(range(200, 400))


def test_backward_compat_full_scan_is_sorted(index):
    fill_index(index, 700, seed=9)
    assert ints(index.scan()) == sorted(contents_as_ints(index))
