"""Unit tests for key encoding and suffix compression."""

import pytest

from repro.btree import keys as K
from repro.errors import BTreeError


def test_rowid_roundtrip():
    for rid in (0, 1, 123456, K.ROWID_MAX):
        assert K.decode_rowid(K.encode_rowid(rid)) == rid


def test_rowid_out_of_range():
    with pytest.raises(BTreeError):
        K.encode_rowid(-1)
    with pytest.raises(BTreeError):
        K.encode_rowid(K.ROWID_MAX + 1)


def test_rowid_byte_order_matches_numeric_order():
    assert K.encode_rowid(5) < K.encode_rowid(6)
    assert K.encode_rowid(255) < K.encode_rowid(256)


def test_leaf_unit_concatenates():
    unit = K.leaf_unit(b"abcd", 7, key_len=4)
    assert unit == b"abcd" + (7).to_bytes(6, "big")


def test_leaf_unit_enforces_key_len():
    with pytest.raises(BTreeError):
        K.leaf_unit(b"abc", 1, key_len=4)
    with pytest.raises(BTreeError):
        K.leaf_unit(b"abcde", 1, key_len=4)


def test_split_unit_inverse():
    unit = K.leaf_unit(b"wxyz", 99, key_len=4)
    assert K.split_unit(unit) == (b"wxyz", 99)


def test_split_unit_rejects_short():
    with pytest.raises(BTreeError):
        K.split_unit(b"abc")


def test_duplicate_keys_ordered_by_rowid():
    a = K.leaf_unit(b"same", 1, key_len=4)
    b = K.leaf_unit(b"same", 2, key_len=4)
    assert a < b


def test_search_bounds_bracket_all_rowids():
    lo = K.search_floor(b"key1")
    hi = K.search_ceiling(b"key1")
    for rid in (0, 500, K.ROWID_MAX):
        unit = K.leaf_unit(b"key1", rid, key_len=4)
        assert lo <= unit <= hi


class TestSeparator:
    def test_separator_properties(self):
        cases = [
            (b"apple", b"banana"),
            (b"abc", b"abd"),
            (b"abc", b"abcd"),
            (b"a", b"b"),
            (b"\x00\x01", b"\x00\x02"),
        ]
        for left, right in cases:
            s = K.separator(left, right)
            assert left < s <= right
            # Shortest: one byte shorter fails the property.
            if len(s) > 1:
                assert not left < s[:-1]

    def test_separator_first_divergence(self):
        assert K.separator(b"aaaa", b"aaba") == b"aab"

    def test_separator_prefix_case(self):
        assert K.separator(b"ab", b"abc") == b"abc"

    def test_separator_requires_strict_order(self):
        with pytest.raises(BTreeError):
            K.separator(b"same", b"same")
        with pytest.raises(BTreeError):
            K.separator(b"z", b"a")

    def test_separator_compresses_long_tails(self):
        left = b"commonprefix-" + b"a" * 30
        right = b"commonprefix-" + b"b" * 30
        s = K.separator(left, right)
        assert len(s) == len(b"commonprefix-") + 1
