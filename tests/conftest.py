"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Engine
from repro.btree.tree import BTree
from repro.storage import page as page_module

# Cross-check the incremental page byte-accounting cache against a full
# recompute on every used_bytes read, for the whole suite.
page_module.set_debug_accounting(True)


def intkey(i: int) -> bytes:
    """4-byte big-endian key used throughout the tests."""
    return i.to_bytes(4, "big")


@pytest.fixture
def engine() -> Engine:
    """A fresh engine with a moderately sized buffer pool."""
    return Engine(buffer_capacity=2048, lock_timeout=15.0)


@pytest.fixture
def index(engine: Engine) -> BTree:
    """An empty 4-byte-key index on a fresh engine."""
    return engine.create_index(key_len=4)


def fill_index(index: BTree, count: int, seed: int | None = 42) -> list[int]:
    """Insert keys 0..count-1 (shuffled unless seed is None); returns order."""
    order = list(range(count))
    if seed is not None:
        random.Random(seed).shuffle(order)
    for k in order:
        index.insert(intkey(k), k)
    return order


def make_half_empty(index: BTree, count: int, seed: int = 42) -> list[int]:
    """Fill with ``count`` keys then delete the even ones; returns survivors."""
    fill_index(index, count, seed)
    for k in range(0, count, 2):
        index.delete(intkey(k), k)
    return [k for k in range(count) if k % 2 == 1]


def contents_as_ints(index: BTree) -> list[int]:
    return [int.from_bytes(key, "big") for key, _rowid in index.contents()]
