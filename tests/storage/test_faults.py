"""Unit tests for CRC trailers and the fault-injection wrapper."""

import pytest

from repro.concurrency.syncpoints import CrashPoint
from repro.errors import (
    ChecksumError,
    PermanentIOError,
    StorageError,
    TransientIOError,
)
from repro.stats.counters import Counters
from repro.storage.disk import CRC_TRAILER_SIZE, Disk
from repro.storage.faults import FaultKind, FaultPlan, FaultSpec, FaultyDisk
from repro.storage.file_disk import FileDisk
from repro.storage.page import PAGE_SIZE_DEFAULT, Page


def image(pid: int, marker: int = 0) -> bytes:
    """A valid page image (real header magic) with a distinguishing byte."""
    page = Page(pid)
    data = bytearray(page.to_bytes())
    data[-1] = marker & 0xFF
    return bytes(data)


@pytest.fixture
def disk() -> Disk:
    return Disk(counters=Counters())


@pytest.fixture
def fdisk(tmp_path) -> FileDisk:
    return FileDisk(str(tmp_path / "data.pages"), counters=Counters())


# ----------------------------------------------------------- CRC trailers


@pytest.mark.parametrize("which", ["mem", "file"])
def test_crc_roundtrip_and_corruption(which, disk, fdisk):
    d = disk if which == "mem" else fdisk
    d.write(1, image(1, 7))
    assert d.read(1) == image(1, 7)
    assert d.exists(1)
    # Flip one bit in the stored physical image: the read must fail its
    # CRC check (ChecksumError — written but not what the engine wrote),
    # and exists() must report the page as absent (recoverable via redo).
    blob = bytearray(d.read_physical(1))
    blob[100] ^= 0x01
    d.write_physical(1, bytes(blob))
    with pytest.raises(ChecksumError):
        d.read(1)
    assert not d.exists(1)
    assert d.counters.disk_read_bad_crc > 0
    # Never-written stays a plain StorageError, not a checksum failure.
    with pytest.raises(StorageError) as exc:
        d.read(2)
    assert not isinstance(exc.value, ChecksumError)


def test_physical_image_carries_trailer(disk):
    disk.write(1, image(1))
    assert len(disk.read_physical(1)) == PAGE_SIZE_DEFAULT + CRC_TRAILER_SIZE


def test_read_run_treats_corrupt_page_as_absent(fdisk):
    for pid in (1, 2, 3):
        fdisk.write(pid, image(pid, pid))
    blob = bytearray(fdisk.read_physical(2))
    blob[50] ^= 0x10
    fdisk.write_physical(2, bytes(blob))
    run = fdisk.read_run(1, 3)
    assert run[0] == image(1, 1)
    assert run[1] is None
    assert run[2] == image(3, 3)


def test_file_disk_rejection_reason_counters(fdisk):
    fdisk.write(1, image(1))
    # Short: beyond the end of the file.
    assert not fdisk.exists(9)
    assert fdisk.counters.disk_read_short == 1
    # Bad magic: a dropped page.
    fdisk.drop(1)
    assert not fdisk.exists(1)
    assert fdisk.counters.disk_read_bad_magic == 1
    # Bad CRC: a torn image.
    fdisk.write(2, image(2))
    blob = bytearray(fdisk.read_physical(2))
    blob[30] ^= 0x02
    fdisk.write_physical(2, bytes(blob))
    assert not fdisk.exists(2)
    assert fdisk.counters.disk_read_bad_crc == 1


def test_checksums_off_skips_verification(tmp_path):
    d = FileDisk(
        str(tmp_path / "raw.pages"), counters=Counters(), checksums=False
    )
    d.write(1, image(1, 3))
    blob = bytearray(d.read_physical(1))
    blob[-1] ^= 0xFF  # trash the (zeroed) trailer: must not matter
    d.write_physical(1, bytes(blob))
    assert d.read(1) == image(1, 3)


# ------------------------------------------------------------- FaultyDisk


def faulty(disk, **plan_kwargs):
    return FaultyDisk(disk, FaultPlan(**plan_kwargs), counters=disk.counters)


def test_transient_fault_fires_once_at_site(disk):
    fd = faulty(disk)
    fd.plan.at(FaultSpec(op="read", nth=2, kind=FaultKind.TRANSIENT))
    fd.write(1, image(1))
    assert fd.read(1) == image(1)  # call #1: clean
    with pytest.raises(TransientIOError):
        fd.read(1)  # call #2: injected
    assert fd.read(1) == image(1)  # call #3: the spec was consumed
    assert fd.plan.injected == ["transient:read#2"]


def test_permanent_fault(disk):
    fd = faulty(disk)
    fd.plan.at(FaultSpec(op="write", nth=1, kind=FaultKind.PERMANENT))
    with pytest.raises(PermanentIOError):
        fd.write(1, image(1))
    assert not fd.exists(1)


def test_torn_write_many_persists_prefix_only(disk):
    fd = faulty(disk)
    fd.plan.at(
        FaultSpec(
            op="write_many", nth=1, kind=FaultKind.TORN, pages_persisted=2
        )
    )
    items = {pid: image(pid, pid) for pid in (1, 2, 3, 4)}
    with pytest.raises(TransientIOError):
        fd.write_many(items)
    assert fd.exists(1) and fd.exists(2)
    assert not fd.exists(3) and not fd.exists(4)
    # The retry (same call, next ordinal) completes the batch.
    fd.write_many(items)
    assert all(fd.exists(pid) for pid in items)


def test_torn_write_many_byte_tear_detected_by_crc(disk):
    fd = faulty(disk)
    fd.plan.at(
        FaultSpec(
            op="write_many", nth=1, kind=FaultKind.TORN,
            pages_persisted=1, torn_byte=700, crash=True,
        )
    )
    with pytest.raises(CrashPoint):
        fd.write_many({1: image(1, 1), 2: image(2, 2)})
    assert fd.exists(1)
    # Page 2 got the first 700 bytes of the new image only: the CRC
    # trailer catches it through the normal read path.
    with pytest.raises(ChecksumError):
        disk.read(2)
    assert not fd.exists(2)


def test_lost_write_acks_without_persisting_then_crashes(disk):
    fd = faulty(disk)
    fd.plan.at(
        FaultSpec(op="write_many", nth=1, kind=FaultKind.LOST, crash=True)
    )
    fd.write_many({1: image(1)})  # acks the lie
    assert fd.crash_armed
    with pytest.raises(CrashPoint):
        fd.read(1)  # the next disk call is the power failure
    fd.disarm()  # "reboot"
    with pytest.raises(StorageError):
        fd.read(1)  # the page was genuinely never persisted


def test_corrupt_read_flows_through_real_crc_path(disk):
    fd = faulty(disk)
    fd.write(1, image(1))
    fd.plan.at(FaultSpec(op="read", nth=2, kind=FaultKind.CORRUPT, bit=123))
    assert fd.read(1) == image(1)
    with pytest.raises(ChecksumError):
        fd.read(1)
    assert disk.counters.disk_read_bad_crc > 0


def test_rate_storm_is_deterministic_per_seed(disk):
    def storm(seed):
        d = Disk(counters=Counters())
        fd = FaultyDisk(
            d,
            FaultPlan(seed=seed, transient_read_rate=0.5),
            counters=d.counters,
        )
        d.write(1, image(1))
        outcomes = []
        for _ in range(40):
            try:
                fd.read(1)
                outcomes.append(True)
            except TransientIOError:
                outcomes.append(False)
        return outcomes

    assert storm(3) == storm(3)
    assert storm(3) != storm(4)


def test_rate_storm_cap(disk):
    fd = FaultyDisk(
        disk,
        FaultPlan(seed=0, transient_read_rate=1.0, max_rate_faults=2),
        counters=disk.counters,
    )
    disk.write(1, image(1))
    for _ in range(2):
        with pytest.raises(TransientIOError):
            fd.read(1)
    assert fd.read(1) == image(1)  # the cap stopped the storm


def test_delegation_passes_through(disk):
    fd = faulty(disk)
    fd.write(1, image(1))
    assert fd.page_ids() == [1]
    assert fd.page_size == disk.page_size
    fd.drop(1)
    assert not fd.exists(1)
