"""Unit tests for the simulated disk (repro.storage.disk)."""

import time

import pytest

from repro.errors import StorageError
from repro.stats.counters import Counters
from repro.storage.disk import Disk, _io_calls


def image(byte: int, size: int = 2048) -> bytes:
    return bytes([byte]) * size


@pytest.fixture
def counters() -> Counters:
    return Counters()


def test_write_then_read_roundtrip(counters):
    disk = Disk(counters=counters)
    disk.write(1, image(0xAA))
    assert disk.read(1) == image(0xAA)


def test_read_unwritten_page_raises(counters):
    disk = Disk(counters=counters)
    with pytest.raises(StorageError):
        disk.read(5)


def test_write_rejects_wrong_size(counters):
    disk = Disk(counters=counters)
    with pytest.raises(StorageError):
        disk.write(1, b"short")


def test_io_size_must_be_page_multiple(counters):
    with pytest.raises(StorageError):
        Disk(page_size=2048, io_size=3000, counters=counters)


def test_single_ops_count_one_call_each(counters):
    disk = Disk(counters=counters)
    disk.write(1, image(1))
    disk.read(1)
    assert counters.disk_io_calls == 2
    assert counters.disk_pages_written == 1
    assert counters.disk_pages_read == 1


def test_read_run_batches_with_large_buffers(counters):
    disk = Disk(io_size=2048 * 8, counters=counters)
    for pid in range(1, 17):
        disk.write(pid, image(pid))
    before = counters.disk_io_calls
    images = disk.read_run(1, 16)
    assert counters.disk_io_calls - before == 2  # 16 pages / 8 per IO
    assert images[0] == image(1)
    assert images[15] == image(16)


def test_read_run_missing_pages_are_none(counters):
    disk = Disk(io_size=2048 * 4, counters=counters)
    disk.write(2, image(2))
    images = disk.read_run(1, 4)
    assert images[0] is None
    assert images[1] == image(2)
    assert images[2] is None


def test_write_many_coalesces_contiguous_runs(counters):
    disk = Disk(io_size=2048 * 8, counters=counters)
    before = counters.disk_io_calls
    disk.write_many({pid: image(pid % 250) for pid in range(10, 26)})
    # 16 contiguous pages through 8-page buffers -> 2 calls.
    assert counters.disk_io_calls - before == 2


def test_write_many_scattered_costs_per_page(counters):
    disk = Disk(io_size=2048 * 8, counters=counters)
    before = counters.disk_io_calls
    disk.write_many({pid: image(1) for pid in (1, 10, 20, 30)})
    assert counters.disk_io_calls - before == 4


def test_write_many_empty_is_free(counters):
    disk = Disk(counters=counters)
    before = counters.disk_io_calls
    disk.write_many({})
    assert counters.disk_io_calls == before


def test_exists_and_drop(counters):
    disk = Disk(counters=counters)
    disk.write(3, image(3))
    assert disk.exists(3)
    disk.drop(3)
    assert not disk.exists(3)


def test_page_ids_sorted(counters):
    disk = Disk(counters=counters)
    for pid in (5, 1, 3):
        disk.write(pid, image(pid))
    assert disk.page_ids() == [1, 3, 5]


def test_io_calls_helper():
    assert _io_calls(16, 8) == 2
    assert _io_calls(17, 8) == 3
    assert _io_calls(1, 8) == 1


def test_durability_write_overwrites(counters):
    disk = Disk(counters=counters)
    disk.write(1, image(1))
    disk.write(1, image(2))
    assert disk.read(1) == image(2)


def test_simulated_latency_sleeps_per_call(counters):
    disk = Disk(io_size=2048 * 8, counters=counters, latency=0.01)
    for pid in range(1, 9):
        disk.write(pid, image(pid))
    start = time.perf_counter()
    disk.read_run(1, 8)  # one physical call despite 8 pages
    one_call = time.perf_counter() - start
    start = time.perf_counter()
    for pid in range(1, 9):
        disk.read(pid)  # eight physical calls
    eight_calls = time.perf_counter() - start
    assert one_call >= 0.01
    assert eight_calls >= 0.08
    assert eight_calls > one_call * 3  # scattered I/O pays per call


def test_negative_latency_rejected(counters):
    with pytest.raises(StorageError):
        Disk(counters=counters, latency=-0.001)
