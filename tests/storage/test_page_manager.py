"""Unit tests for allocation states and chunk allocation (§4.1.3, §6.1)."""

import pytest

from repro.errors import AllocationError, PageStateError
from repro.stats.counters import Counters
from repro.storage.disk import Disk
from repro.storage.page_manager import ChunkAllocator, PageManager, PageState


@pytest.fixture
def pm() -> PageManager:
    counters = Counters()
    return PageManager(Disk(counters=counters), counters=counters)


def test_fresh_ids_start_at_one(pm):
    assert pm.allocate() == 1
    assert pm.allocate() == 2


def test_lifecycle_allocated_deallocated_free(pm):
    pid = pm.allocate()
    assert pm.state(pid) is PageState.ALLOCATED
    pm.deallocate(pid)
    assert pm.state(pid) is PageState.DEALLOCATED
    pm.free(pid)
    assert pm.state(pid) is PageState.FREE
    assert pm.allocate() == pid  # freed pages are reused first


def test_deallocate_requires_allocated(pm):
    with pytest.raises(PageStateError):
        pm.deallocate(99)
    pid = pm.allocate()
    pm.deallocate(pid)
    with pytest.raises(PageStateError):
        pm.deallocate(pid)


def test_free_requires_deallocated(pm):
    pid = pm.allocate()
    with pytest.raises(PageStateError):
        pm.free(pid)


def test_undo_deallocate(pm):
    pid = pm.allocate()
    pm.deallocate(pid)
    pm.undo_deallocate(pid)
    assert pm.state(pid) is PageState.ALLOCATED


def test_undo_allocate(pm):
    pid = pm.allocate()
    pm.undo_allocate(pid)
    assert pm.state(pid) is PageState.FREE


def test_undo_transitions_check_state(pm):
    pid = pm.allocate()
    with pytest.raises(PageStateError):
        pm.undo_deallocate(pid)
    pm.deallocate(pid)
    with pytest.raises(PageStateError):
        pm.undo_allocate(pid)


def test_allocate_specific(pm):
    pm.allocate_specific(50)
    assert pm.state(50) is PageState.ALLOCATED
    assert pm.high_water_mark == 51
    with pytest.raises(PageStateError):
        pm.allocate_specific(50)


def test_deallocated_pages_listing(pm):
    pids = [pm.allocate() for _ in range(4)]
    pm.deallocate(pids[1])
    pm.deallocate(pids[3])
    assert pm.deallocated_pages() == sorted([pids[1], pids[3]])


def test_reserve_chunk_is_contiguous(pm):
    start = pm.reserve_chunk(8)
    for pid in range(start, start + 8):
        assert pm.state(pid) is PageState.ALLOCATED


def test_reserve_chunk_prefers_existing_free_run(pm):
    pids = [pm.allocate() for _ in range(10)]
    for pid in pids[2:7]:
        pm.deallocate(pid)
        pm.free(pid)
    start = pm.reserve_chunk(4)
    assert start == pids[2]


def test_reserve_chunk_extends_when_no_run(pm):
    pids = [pm.allocate() for _ in range(6)]
    # Free alternating pages: no run of 3 exists below the HWM.
    for pid in pids[::2]:
        pm.deallocate(pid)
        pm.free(pid)
    start = pm.reserve_chunk(3)
    assert start > pids[-1]


def test_reserve_chunk_rejects_nonpositive(pm):
    with pytest.raises(AllocationError):
        pm.reserve_chunk(0)


def test_release_unused_returns_to_free_pool(pm):
    start = pm.reserve_chunk(4)
    pm.release_unused([start + 2, start + 3])
    assert pm.state(start + 2) is PageState.FREE
    assert pm.state(start + 3) is PageState.FREE
    assert pm.state(start) is PageState.ALLOCATED


def test_force_state_bypasses_checks(pm):
    pm.force_state(77, PageState.DEALLOCATED)
    assert pm.state(77) is PageState.DEALLOCATED
    pm.force_state(77, PageState.FREE)
    assert pm.state(77) is PageState.FREE
    assert pm.high_water_mark >= 78


def test_snapshot_restore_roundtrip(pm):
    a = pm.allocate()
    b = pm.allocate()
    pm.deallocate(b)
    snap = pm.snapshot()
    pm.allocate()
    pm.free(b)
    pm.restore(snap)
    assert pm.state(a) is PageState.ALLOCATED
    assert pm.state(b) is PageState.DEALLOCATED
    assert pm.high_water_mark == 3


class TestChunkAllocator:
    def test_sequential_ids_within_chunk(self, pm):
        alloc = ChunkAllocator(pm, chunk_size=8)
        ids = [alloc.next_page() for _ in range(8)]
        assert ids == list(range(ids[0], ids[0] + 8))

    def test_new_chunk_after_exhaustion(self, pm):
        alloc = ChunkAllocator(pm, chunk_size=4)
        first = [alloc.next_page() for _ in range(4)]
        fifth = alloc.next_page()
        assert fifth not in first

    def test_close_releases_pending(self, pm):
        alloc = ChunkAllocator(pm, chunk_size=8)
        used = alloc.next_page()
        alloc.close()
        assert pm.state(used) is PageState.ALLOCATED
        assert pm.state(used + 1) is PageState.FREE

    def test_rejects_bad_chunk_size(self, pm):
        with pytest.raises(AllocationError):
            ChunkAllocator(pm, chunk_size=0)
