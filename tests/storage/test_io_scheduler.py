"""Unit tests for the asynchronous I/O scheduler (read-ahead + write-behind)."""

from __future__ import annotations

import time

import pytest

from repro.errors import IOSchedulerError
from repro.stats.counters import Counters
from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.io_scheduler import CompletionToken, IOScheduler
from repro.storage.page import NO_PAGE, PAGE_SIZE_DEFAULT, Page


def make_pool(capacity: int = 64, pages: int = 0) -> tuple[BufferPool, Counters]:
    counters = Counters()
    disk = Disk(page_size=PAGE_SIZE_DEFAULT, io_size=PAGE_SIZE_DEFAULT * 4,
                counters=counters)
    pool = BufferPool(disk, capacity=capacity, counters=counters)
    for pid in range(1, pages + 1):
        disk.write(pid, Page(pid, PAGE_SIZE_DEFAULT).to_bytes())
    return pool, counters


def dirty_pages(pool: BufferPool, ids: list[int]) -> None:
    for pid in ids:
        page = pool.new_page(pid)
        page.page_lsn = 0
        pool.unpin(pid, dirty=True)


# ----------------------------------------------------------------- tokens


def test_token_wait_raises_on_timeout():
    token = CompletionToken()
    with pytest.raises(IOSchedulerError):
        token.wait(timeout=0.01)


def test_token_wait_raises_on_failure():
    token = CompletionToken()
    token._fail(RuntimeError("disk on fire"))
    with pytest.raises(IOSchedulerError, match="disk on fire"):
        token.wait(timeout=0.01)
    assert not token.done


def test_token_done_after_complete():
    token = CompletionToken()
    token._complete()
    token.wait(timeout=0.01)
    assert token.done


# ------------------------------------------------------------ write-behind


def test_force_makes_pages_durable():
    pool, counters = make_pool()
    dirty_pages(pool, [1, 2, 3, 4])
    sched = IOScheduler(pool, counters=counters).start()
    try:
        sched.force([1, 2, 3, 4]).wait(timeout=10.0)
        for pid in (1, 2, 3, 4):
            assert pool.disk.exists(pid)
        assert counters.writebehind_pages == 4
        assert counters.writebehind_forces == 1
    finally:
        sched.close()


def test_submit_then_force_orders_correctly():
    pool, counters = make_pool()
    dirty_pages(pool, list(range(1, 9)))
    sched = IOScheduler(pool, counters=counters).start()
    try:
        sched.submit_write([1, 2, 3, 4])
        sched.force([5, 6, 7, 8]).wait(timeout=10.0)
        for pid in range(1, 9):
            assert pool.disk.exists(pid)
    finally:
        sched.close()


def test_kill_fails_pending_and_future_tokens():
    pool, counters = make_pool()
    dirty_pages(pool, [1, 2])
    sched = IOScheduler(pool, counters=counters).start()
    sched.kill()
    token = sched.force([1, 2])
    with pytest.raises(IOSchedulerError):
        token.wait(timeout=5.0)
    sched.close()


def test_force_after_close_fails_fast():
    pool, _ = make_pool()
    sched = IOScheduler(pool).start()
    sched.close()
    with pytest.raises(IOSchedulerError):
        sched.force([1]).wait(timeout=1.0)


def test_close_drains_submitted_writes():
    pool, _ = make_pool()
    dirty_pages(pool, [1, 2, 3])
    sched = IOScheduler(pool).start()
    sched.submit_write([1, 2, 3])
    sched.close()
    for pid in (1, 2, 3):
        assert pool.disk.exists(pid)


# -------------------------------------------------- tail-retention batching


def test_split_tail_retains_partial_run():
    pool, _ = make_pool()  # pages_per_io = 4
    sched = IOScheduler(pool)
    flush_now, retain = sched._split_tail([1, 2, 3, 4, 5, 6])
    assert flush_now == [1, 2, 3, 4]
    assert retain == [5, 6]


def test_split_tail_full_runs_flush_everything():
    pool, _ = make_pool()
    sched = IOScheduler(pool)
    flush_now, retain = sched._split_tail([1, 2, 3, 4, 5, 6, 7, 8])
    assert flush_now == [1, 2, 3, 4, 5, 6, 7, 8]
    assert retain == []


def test_split_tail_all_partial_retains_everything():
    pool, _ = make_pool()
    sched = IOScheduler(pool)
    flush_now, retain = sched._split_tail([9, 10])
    assert flush_now == []
    assert retain == [9, 10]


def test_tail_retention_saves_physical_calls():
    """Two 6-page contiguous submissions through the writer cost the same
    physical calls as one 12-page flush would (3 calls at 4 pages/call),
    not the 4 calls two rounded-up 6-page flushes would cost."""
    pool, counters = make_pool()
    dirty_pages(pool, list(range(1, 13)))
    before = counters.snapshot()
    sched = IOScheduler(pool, counters=counters).start()
    try:
        sched.submit_write([1, 2, 3, 4, 5, 6])
        sched.force([7, 8, 9, 10, 11, 12]).wait(timeout=10.0)
    finally:
        sched.close()
    assert counters.diff(before)["disk_io_calls"] == 3


# ---------------------------------------------------------------- prefetch


def test_prefetch_chain_populates_pool():
    pool, counters = make_pool(pages=6)
    # Link 1 -> 2 -> 3 on disk so the chain walk can follow next_page.
    for pid in (1, 2, 3):
        page = Page(pid, PAGE_SIZE_DEFAULT)
        page.next_page = pid + 1 if pid < 3 else NO_PAGE
        pool.disk.write(pid, page.to_bytes())
    sched = IOScheduler(pool, counters=counters, depth=2).start()
    try:
        sched.prefetch_chain(1, 3)
        deadline = time.monotonic() + 5.0
        while counters.prefetch_admitted < 3:
            if time.monotonic() > deadline:
                break
            time.sleep(0.005)
        assert pool.is_resident(1)
        assert pool.is_resident(2)
        assert pool.is_resident(3)
    finally:
        sched.close()


def test_prefetch_never_evicts_dirty_frames():
    pool, counters = make_pool(capacity=8, pages=20)
    # Fill the pool with dirty frames (unpinned but unwritten).
    dirty = list(range(13, 21))
    dirty_pages(pool, dirty)
    writes_before = counters.page_writes
    assert pool.prefetch(1) is None  # no clean victim: prefetch backs off
    assert counters.page_writes == writes_before
    for pid in dirty:
        assert pool.is_resident(pid)


def test_prefetch_missing_page_is_silent():
    pool, _ = make_pool(pages=2)
    assert pool.prefetch(99) is None


def test_prefetched_page_counts_hit_on_fetch():
    pool, counters = make_pool(pages=4)
    pool.prefetch(2)
    assert pool.is_resident(2)
    pool.fetch(2)
    pool.unpin(2)
    assert counters.prefetch_hits == 1
    # A second fetch is a plain cache hit, not another prefetch hit.
    pool.fetch(2)
    pool.unpin(2)
    assert counters.prefetch_hits == 1


def test_unused_prefetch_counted_on_eviction():
    pool, counters = make_pool(capacity=8, pages=20)
    pool.prefetch(1)
    # Fault in enough pages to evict the unused prefetched frame.
    for pid in range(2, 12):
        pool.fetch(pid)
        pool.unpin(pid)
    assert counters.prefetch_unused >= 1


def test_depth_bounds_queued_hints():
    pool, _ = make_pool(pages=2)
    sched = IOScheduler(pool, depth=2)  # not started: queue only
    sched.prefetch_chain(1, 1)
    sched.prefetch_chain(2, 1)
    sched.prefetch_chain(1, 1)  # oldest hint dropped
    assert len(sched._prefetches) == 2


def test_kill_cuts_flush_retry_backoff_short(monkeypatch):
    """A transient-fault storm parks the writer in capped-exponential
    backoff between flush retries; shutdown must interrupt that wait
    (via the scheduler's condition variable), not sit out the full
    backoff."""
    import repro.storage.io_scheduler as mod
    from repro.errors import TransientIOError

    pool, counters = make_pool()
    dirty_pages(pool, [1, 2])
    monkeypatch.setattr(mod, "_WRITER_BACKOFF", 30.0)

    def always_transient(ids):
        raise TransientIOError("storm")

    monkeypatch.setattr(pool, "flush_pages", always_transient)
    sched = IOScheduler(pool, counters=counters).start()
    token = sched.force([1, 2])
    # Wait for the writer to enter its first retry backoff.
    deadline = time.monotonic() + 5.0
    while counters.writebehind_retries == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert counters.writebehind_retries >= 1
    start = time.monotonic()
    sched.kill()
    with pytest.raises(IOSchedulerError):
        token.wait(timeout=5.0)
    assert time.monotonic() - start < 5.0, (
        "kill() waited out the 30 s flush-retry backoff"
    )
