"""Scan-resistant replacement: rebuild ring, 2Q promotion, lock striping."""

import threading

import pytest

from repro.stats.counters import Counters
from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.page import Page


@pytest.fixture
def counters() -> Counters:
    return Counters()


@pytest.fixture
def disk(counters) -> Disk:
    return Disk(counters=counters)


def put_page(disk: Disk, pid: int, marker: bytes = b"") -> None:
    page = Page(pid, disk.page_size)
    if marker:
        page.append_row(marker)
    disk.write(pid, page.to_bytes())


def make_pool(disk, counters, capacity=16, shards=1, ring=0) -> BufferPool:
    return BufferPool(
        disk, capacity=capacity, counters=counters,
        shards=shards, ring_frames=ring,
    )


# ----------------------------------------------------------------- ring off


def test_ring_disabled_scan_fetch_is_plain_lru(disk, counters):
    pool = make_pool(disk, counters, capacity=8)
    put_page(disk, 1)
    pool.fetch(1, scan=True)
    pool.unpin(1)
    snap = counters.snapshot()
    assert snap["ring_admits"] == 0
    assert snap["ring_promotions"] == 0
    assert snap["hot_evictions_by_scan"] == 0
    assert pool.is_resident(1)


def test_demand_hit_and_miss_counters(disk, counters):
    pool = make_pool(disk, counters, capacity=8)
    put_page(disk, 1)
    pool.fetch(1)
    pool.unpin(1)
    pool.fetch(1)
    pool.unpin(1)
    snap = counters.snapshot()
    assert snap["pool_demand_misses"] == 1
    assert snap["pool_demand_hits"] == 1
    # Scan-class fetches are not OLTP traffic and count under neither.
    pool.fetch(1, scan=True)
    pool.unpin(1)
    after = counters.snapshot()
    assert after["pool_demand_misses"] == 1
    assert after["pool_demand_hits"] == 1


# ------------------------------------------------------------------ ring on


def test_ring_bounds_scan_displacement(disk, counters):
    pool = make_pool(disk, counters, capacity=16, ring=4)
    hot = list(range(1, 13))  # 12 hot pages, 4 frames of headroom
    for pid in hot:
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    for pid in range(100, 150):  # a 50-leaf scan through a 4-frame ring
        put_page(disk, pid)
        pool.fetch(pid, scan=True)
        pool.unpin(pid)
    for pid in hot:
        assert pool.is_resident(pid), f"scan displaced hot page {pid}"
    snap = counters.snapshot()
    assert snap["ring_admits"] == 50
    assert snap["hot_evictions_by_scan"] == 0


def test_without_ring_the_same_scan_sweeps_the_hot_set(disk, counters):
    pool = make_pool(disk, counters, capacity=16, ring=0)
    hot = list(range(1, 13))
    for pid in hot:
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    for pid in range(100, 150):
        put_page(disk, pid)
        pool.fetch(pid, scan=True)
        pool.unpin(pid)
    assert not any(pool.is_resident(pid) for pid in hot)


def test_demand_hit_promotes_ring_page_to_protected(disk, counters):
    pool = make_pool(disk, counters, capacity=16, ring=2)
    put_page(disk, 1)
    pool.fetch(1, scan=True)  # admitted to the ring
    pool.unpin(1)
    pool.fetch(1)  # demand re-reference: promoted
    pool.unpin(1)
    assert counters.snapshot()["ring_promotions"] == 1
    # Promoted out of the ring: a long scan can no longer displace it.
    for pid in range(100, 140):
        put_page(disk, pid)
        pool.fetch(pid, scan=True)
        pool.unpin(pid)
    assert pool.is_resident(1)


def test_scan_rereference_stays_in_ring(disk, counters):
    pool = make_pool(disk, counters, capacity=16, ring=2)
    put_page(disk, 1)
    pool.fetch(1, scan=True)
    pool.unpin(1)
    pool.fetch(1, scan=True)
    pool.unpin(1)
    snap = counters.snapshot()
    assert snap["ring_admits"] == 1
    assert snap["ring_promotions"] == 0


def test_new_page_scan_goes_to_ring_and_recycles(disk, counters):
    pool = make_pool(disk, counters, capacity=16, ring=2)
    hot = list(range(1, 11))
    for pid in hot:
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    # A rebuild allocating many fresh targets churns only the ring; the
    # dirty ring victims are written out on recycle, not lost.
    for pid in range(100, 120):
        page = pool.new_page(pid, scan=True)
        page.append_row(b"x" * 8)
        pool.unpin(pid, dirty=True)
    for pid in hot:
        assert pool.is_resident(pid)
    for pid in range(100, 118):  # all but the ring's current residents
        if not pool.is_resident(pid):
            assert disk.exists(pid), f"recycled new page {pid} not written"
    assert counters.snapshot()["ring_admits"] == 20


def test_set_ring_frames_zero_demotes_to_cold_end(disk, counters):
    pool = make_pool(disk, counters, capacity=16, ring=4)
    for pid in (1, 2):
        put_page(disk, pid)
        pool.fetch(pid, scan=True)
        pool.unpin(pid)
    pool.set_ring_frames(0)
    assert pool.is_resident(1) and pool.is_resident(2)
    # Demoted frames sit at the cold end: the first admissions past
    # capacity reclaim exactly them.
    for pid in range(10, 24):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    assert pool.is_resident(10)
    for pid in range(200, 202):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    assert not pool.is_resident(1) and not pool.is_resident(2)


# --------------------------------------------------- prefetch x ring (sat 2)


def test_overprefetch_past_scan_end_counts_unused(disk, counters):
    # Read-ahead runs past where the scan actually stops.  Frames the
    # scan moved past without consuming are first-out of the ring and
    # counted ``prefetch_unused``; once the ring is wall-to-wall with
    # the not-yet-consumed window, further read-ahead is refused before
    # the physical read (``prefetch_throttled``) instead of eating it.
    pool = make_pool(disk, counters, capacity=16, ring=4)
    for pid in range(1, 13):
        put_page(disk, pid)
    for pid in range(1, 5):
        pool.prefetch(pid, scan=True)
    # The scan skips ahead to page 4: pages 1-3 are bypassed speculation.
    pool.fetch(4, scan=True)
    pool.unpin(4)
    before = counters.snapshot()
    for pid in range(5, 13):
        pool.prefetch(pid, scan=True)
    snap = counters.snapshot()
    # Bypassed frames (1-3) recycle first-out; the throttle caps how
    # many of the second wave even get admitted, so at least two of the
    # bypassed frames are recycled to make room before it kicks in.
    assert snap["prefetch_unused"] >= 2
    assert snap["prefetch_throttled"] >= 1
    assert snap["hot_evictions_by_scan"] == 0
    # The throttled hints paid no physical I/O: the second wave's reads
    # are bounded by what it actually admitted.
    extra_reads = snap["disk_io_calls"] - before["disk_io_calls"]
    admitted = snap["prefetch_admitted"] - before["prefetch_admitted"]
    assert extra_reads <= admitted + 1


def test_used_ring_page_outlives_unused_prefetched_ones(counters):
    disk = Disk(io_size=2048 * 4, counters=counters)  # 4 pages per IO
    pool = BufferPool(
        disk, capacity=16, counters=counters, ring_frames=4,
    )
    ppio = disk.pages_per_io
    # One aligned run's worth of prefetched pages, then *use* one of them.
    for pid in range(1, ppio + 1):
        put_page(disk, pid)
    pool.prefetch(1, scan=True)
    used = min(2, ppio)
    pool.fetch(used, scan=True)
    pool.unpin(used)
    # The scan consumed page 2, so page 1 (admitted before it, never
    # fetched) is bypassed speculation while pages 3-4 are the live
    # window ahead of the watermark.  The next scan admission recycles
    # the bypassed frame first: the used page and the window survive.
    put_page(disk, 100)
    pool.fetch(100, scan=True)
    pool.unpin(100)
    assert not pool.is_resident(1)
    assert pool.is_resident(used)
    assert pool.is_resident(3) and pool.is_resident(4)
    assert counters.snapshot()["prefetch_unused"] >= 1
    # With no bypassed frames left, the oldest *consumed* frame goes
    # next — the scan is done with it — and the window still survives
    # (evicting pages the scan is about to read would re-buy their I/O).
    put_page(disk, 101)
    pool.fetch(101, scan=True)
    pool.unpin(101)
    assert not pool.is_resident(used)
    assert pool.is_resident(3) and pool.is_resident(4)


# ------------------------------------------------------------------ striping


def test_sharded_pool_spreads_and_flushes(disk, counters):
    pool = make_pool(disk, counters, capacity=32, shards=4)
    dirty_ids = []
    for pid in range(1, 25):
        page = pool.new_page(pid)
        page.append_row(b"r" * 4)
        pool.unpin(pid, dirty=True)
        dirty_ids.append(pid)
    pool.flush_pages(dirty_ids)
    for pid in dirty_ids:
        assert disk.exists(pid)
    pool.flush_all()  # everything clean: no further writes needed
    pool.evict_all()
    assert not any(pool.is_resident(pid) for pid in dirty_ids)
    reread = pool.fetch(7)
    assert reread.rows == [b"r" * 4]
    pool.unpin(7)


def test_shard_capacity_never_exceeded(disk, counters):
    pool = make_pool(disk, counters, capacity=16, shards=2)
    for pid in range(1, 41):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    resident = sum(pool.is_resident(pid) for pid in range(1, 41))
    assert resident <= 16
    for shard in pool._shards:
        assert shard.resident() <= shard.capacity


def test_shard_conflict_counter_fires_on_contention(disk, counters):
    pool = make_pool(disk, counters, capacity=16, shards=2)
    put_page(disk, 2)
    pool.fetch(2)
    pool.unpin(2)
    shard = pool._shards[0]  # page 2 lives in shard 0
    shard.lock.acquire()
    try:
        probe = threading.Thread(target=pool.is_resident, args=(2,))
        probe.start()
        # The probe thread is now blocked on shard 0's lock; its failed
        # non-blocking acquire has already been counted.
        deadline = 100
        while (
            counters.snapshot()["pool_shard_conflicts"] == 0 and deadline > 0
        ):
            deadline -= 1
            threading.Event().wait(0.01)
    finally:
        shard.lock.release()
    probe.join(timeout=5)
    assert counters.snapshot()["pool_shard_conflicts"] >= 1


def test_crash_clears_every_shard(disk, counters):
    pool = make_pool(disk, counters, capacity=32, shards=4, ring=4)
    for pid in range(1, 9):
        put_page(disk, pid)
        pool.fetch(pid, scan=(pid % 2 == 0))
        pool.unpin(pid)
    pool.crash()
    assert not any(pool.is_resident(pid) for pid in range(1, 9))


def test_shard_validation():
    d = Disk()
    with pytest.raises(Exception):
        BufferPool(d, capacity=16, shards=0)
    with pytest.raises(Exception):
        BufferPool(d, capacity=16, shards=4)  # under 8 frames per shard
    with pytest.raises(Exception):
        BufferPool(d, capacity=16, ring_frames=-1)
