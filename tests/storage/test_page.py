"""Unit tests for the slotted page layout (repro.storage.page)."""

import pytest

from repro.errors import PageFormatError, PageFullError
from repro.storage.page import (
    HEADER_SIZE,
    NO_PAGE,
    PAGE_SIZE_DEFAULT,
    SLOT_OVERHEAD,
    Page,
    PageFlag,
    PageType,
)


def test_new_page_is_empty_raw():
    page = Page(7)
    assert page.page_id == 7
    assert page.page_type is PageType.RAW
    assert page.nrows == 0
    assert page.is_empty
    assert page.prev_page == NO_PAGE
    assert page.next_page == NO_PAGE


def test_used_bytes_counts_header_slots_and_rows():
    page = Page(1)
    assert page.used_bytes == HEADER_SIZE
    page.append_row(b"abcde")
    assert page.used_bytes == HEADER_SIZE + SLOT_OVERHEAD + 5
    page.append_row(b"xy")
    assert page.used_bytes == HEADER_SIZE + 2 * SLOT_OVERHEAD + 7


def test_free_bytes_complements_used():
    page = Page(1)
    page.append_row(b"1234")
    assert page.free_bytes == PAGE_SIZE_DEFAULT - page.used_bytes


def test_fits_accounts_for_slot_overhead():
    page = Page(1)
    row = b"x" * (page.free_bytes - SLOT_OVERHEAD)
    assert page.fits(row)
    assert not page.fits(row + b"y")


def test_insert_row_past_capacity_raises():
    page = Page(1)
    big = b"x" * 1000
    page.append_row(big)
    page.append_row(big)
    with pytest.raises(PageFullError):
        page.append_row(big)


def test_insert_row_positions():
    page = Page(1)
    page.append_row(b"b")
    page.insert_row(0, b"a")
    page.insert_row(2, b"c")
    assert page.rows == [b"a", b"b", b"c"]


def test_insert_row_bad_position_raises():
    page = Page(1)
    with pytest.raises(PageFormatError):
        page.insert_row(1, b"x")


def test_delete_row_returns_removed():
    page = Page(1)
    page.append_row(b"a")
    page.append_row(b"b")
    assert page.delete_row(0) == b"a"
    assert page.rows == [b"b"]


def test_delete_row_bad_position_raises():
    page = Page(1)
    with pytest.raises(PageFormatError):
        page.delete_row(0)


def test_delete_rows_range():
    page = Page(1)
    for token in (b"a", b"b", b"c", b"d"):
        page.append_row(token)
    removed = page.delete_rows(1, 3)
    assert removed == [b"b", b"c"]
    assert page.rows == [b"a", b"d"]


def test_delete_rows_bad_range_raises():
    page = Page(1)
    page.append_row(b"a")
    with pytest.raises(PageFormatError):
        page.delete_rows(0, 2)


def test_replace_row_checks_growth():
    page = Page(1)
    page.append_row(b"small")
    filler = b"f" * (page.free_bytes - SLOT_OVERHEAD)
    page.append_row(filler)
    with pytest.raises(PageFullError):
        page.replace_row(0, b"small-but-now-much-bigger")
    assert page.replace_row(0, b"tiny!") == b"small"


def test_flags_set_clear_check():
    page = Page(1)
    assert not page.has_flag(PageFlag.SPLIT)
    page.set_flag(PageFlag.SPLIT)
    page.set_flag(PageFlag.OLDPGOFSPLIT)
    assert page.has_flag(PageFlag.SPLIT)
    assert page.has_flag(PageFlag.OLDPGOFSPLIT)
    assert not page.has_flag(PageFlag.SHRINK)
    page.clear_flag(PageFlag.SPLIT)
    assert not page.has_flag(PageFlag.SPLIT)
    assert page.has_flag(PageFlag.OLDPGOFSPLIT)


def test_side_entry_counts_against_space_and_clears():
    page = Page(1)
    page.set_side_entry(b"sidekey", 42)
    assert page.side_page == 42
    assert page.used_bytes == HEADER_SIZE + len(b"sidekey")
    page.set_flag(PageFlag.OLDPGOFSPLIT)
    page.clear_side_entry()
    assert page.side_page == NO_PAGE
    assert page.side_key == b""
    assert not page.has_flag(PageFlag.OLDPGOFSPLIT)


def test_side_entry_overflow_raises():
    page = Page(1)
    page.append_row(b"x" * 1990)
    with pytest.raises(PageFullError):
        page.set_side_entry(b"k" * 100, 3)


def test_serialization_roundtrip_preserves_everything():
    page = Page(9)
    page.index_id = 3
    page.page_type = PageType.LEAF
    page.level = 0
    page.prev_page = 4
    page.next_page = 11
    page.page_lsn = 123456789
    page.set_flag(PageFlag.SPLIT)
    page.set_side_entry(b"side", 10)
    page.set_flag(PageFlag.OLDPGOFSPLIT)
    for i in range(10):
        page.append_row(bytes([i]) * (i + 1))
    data = page.to_bytes()
    assert len(data) == PAGE_SIZE_DEFAULT
    back = Page.from_bytes(data)
    assert back.page_id == 9
    assert back.index_id == 3
    assert back.page_type is PageType.LEAF
    assert back.prev_page == 4
    assert back.next_page == 11
    assert back.page_lsn == 123456789
    assert back.has_flag(PageFlag.SPLIT)
    assert back.has_flag(PageFlag.OLDPGOFSPLIT)
    assert back.side_key == b"side"
    assert back.side_page == 10
    assert back.rows == page.rows


def test_from_bytes_rejects_wrong_length():
    with pytest.raises(PageFormatError):
        Page.from_bytes(b"\x00" * 100)


def test_from_bytes_rejects_bad_magic():
    with pytest.raises(PageFormatError):
        Page.from_bytes(b"\xff" * PAGE_SIZE_DEFAULT)


def test_copy_is_deep():
    page = Page(1)
    page.append_row(b"a")
    clone = page.copy()
    clone.append_row(b"b")
    assert page.nrows == 1
    assert clone.nrows == 2


def test_fill_fraction():
    page = Page(1)
    assert page.fill_fraction() == 0.0
    page.append_row(b"x" * ((page.capacity_bytes // 2) - SLOT_OVERHEAD))
    assert 0.45 < page.fill_fraction() < 0.55


def test_custom_page_size():
    page = Page(1, page_size=512)
    assert page.capacity_bytes == 512 - HEADER_SIZE
    page.append_row(b"q" * 100)
    data = page.to_bytes()
    assert len(data) == 512
    assert Page.from_bytes(data, page_size=512).rows == page.rows


def test_serialization_full_page_exact_fit():
    page = Page(1)
    row = b"r" * 100
    while page.fits(row):
        page.append_row(row)
    assert len(page.to_bytes()) == PAGE_SIZE_DEFAULT
    assert Page.from_bytes(page.to_bytes()).nrows == page.nrows
