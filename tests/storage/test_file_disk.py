"""FileDisk: the file-backed page store must match Disk's contract."""

import os

import pytest

from repro.errors import StorageError
from repro.stats.counters import Counters
from repro.storage.file_disk import FileDisk
from repro.storage.page import Page


@pytest.fixture
def disk(tmp_path):
    d = FileDisk(
        str(tmp_path / "pages.db"),
        io_size=2048 * 8,
        counters=Counters(),
    )
    yield d
    d.close()


def image(pid: int, marker: bytes = b"") -> bytes:
    page = Page(pid)
    if marker:
        page.append_row(marker)
    return page.to_bytes()


def test_write_read_roundtrip(disk):
    disk.write(1, image(1, b"hello"))
    assert disk.read(1) == image(1, b"hello")


def test_read_unwritten_raises(disk):
    with pytest.raises(StorageError):
        disk.read(9)


def test_unwritten_hole_between_pages(disk):
    disk.write(5, image(5))
    assert not disk.exists(3)  # inside the file, but all zeroes
    assert disk.exists(5)
    with pytest.raises(StorageError):
        disk.read(3)


def test_wrong_size_rejected(disk):
    with pytest.raises(StorageError):
        disk.write(1, b"short")


def test_read_run_with_holes(disk):
    disk.write(2, image(2, b"two"))
    disk.write(4, image(4, b"four"))
    images = disk.read_run(1, 4)
    assert images[0] is None
    assert images[1] == image(2, b"two")
    assert images[2] is None
    assert images[3] == image(4, b"four")


def test_write_many_coalesces(disk):
    before = disk.counters.disk_io_calls
    disk.write_many({pid: image(pid) for pid in range(10, 26)})
    assert disk.counters.disk_io_calls - before == 2  # 16 pages / 8 per IO
    assert disk.exists(25)


def test_drop_invalidates(disk):
    disk.write(3, image(3))
    disk.drop(3)
    assert not disk.exists(3)


def test_page_ids(disk):
    for pid in (1, 3, 7):
        disk.write(pid, image(pid))
    assert disk.page_ids() == [1, 3, 7]


def test_persistence_across_instances(tmp_path):
    path = str(tmp_path / "p.db")
    first = FileDisk(path, counters=Counters())
    first.write(2, image(2, b"persisted"))
    first.close()
    second = FileDisk(path, counters=Counters())
    assert second.read(2) == image(2, b"persisted")
    assert not second.exists(1)
    second.close()


def test_overwrite(disk):
    disk.write(1, image(1, b"v1"))
    disk.write(1, image(1, b"v2"))
    assert disk.read(1) == image(1, b"v2")
