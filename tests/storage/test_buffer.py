"""Unit tests for the buffer pool: pinning, LRU, WAL hook, crash."""

import pytest

from repro.errors import BufferError_, StorageError
from repro.stats.counters import Counters
from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.page import Page


@pytest.fixture
def counters() -> Counters:
    return Counters()


@pytest.fixture
def disk(counters) -> Disk:
    return Disk(counters=counters)


@pytest.fixture
def pool(disk, counters) -> BufferPool:
    return BufferPool(disk, capacity=8, counters=counters)


def put_page(disk: Disk, pid: int, marker: bytes = b"") -> None:
    page = Page(pid)
    if marker:
        page.append_row(marker)
    disk.write(pid, page.to_bytes())


def test_fetch_miss_reads_from_disk(pool, disk):
    put_page(disk, 1, b"hello")
    page = pool.fetch(1)
    assert page.rows == [b"hello"]
    pool.unpin(1)


def test_fetch_missing_page_raises(pool):
    with pytest.raises(StorageError):
        pool.fetch(99)


def test_fetch_hit_returns_same_object(pool, disk):
    put_page(disk, 1)
    a = pool.fetch(1)
    b = pool.fetch(1)
    assert a is b
    pool.unpin(1)
    pool.unpin(1)


def test_unpin_without_pin_raises(pool, disk):
    put_page(disk, 1)
    pool.fetch(1)
    pool.unpin(1)
    with pytest.raises(BufferError_):
        pool.unpin(1)


def test_new_page_is_pinned_and_dirty(pool):
    page = pool.new_page(5)
    assert page.page_id == 5
    assert pool.pin_count(5) == 1
    pool.unpin(5)
    pool.flush_page(5)
    assert pool.disk.exists(5)


def test_new_page_replaces_stale_resident_incarnation(pool, disk):
    put_page(disk, 3, b"old")
    old = pool.fetch(3)
    pool.unpin(3, dirty=True)
    fresh = pool.new_page(3)
    assert fresh.rows == []
    assert fresh is not old
    # The stale dirty frame must have been written out before replacement.
    assert Page.from_bytes(disk.read(3)).rows == [b"old"]
    pool.unpin(3)


def test_new_page_on_pinned_frame_raises(pool, disk):
    put_page(disk, 3)
    pool.fetch(3)
    with pytest.raises(BufferError_):
        pool.new_page(3)
    pool.unpin(3)


def test_lru_eviction_prefers_oldest_unpinned(pool, disk):
    for pid in range(1, 9):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    pool.fetch(1)  # refresh page 1
    pool.unpin(1)
    put_page(disk, 9)
    pool.fetch(9)  # evicts page 2 (oldest untouched)
    pool.unpin(9)
    assert pool.is_resident(1)
    assert not pool.is_resident(2)


def test_eviction_writes_dirty_page(pool, disk):
    page = pool.new_page(1)
    page.append_row(b"dirty")
    pool.unpin(1, dirty=True)
    for pid in range(2, 11):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid)
    assert not pool.is_resident(1)
    assert Page.from_bytes(disk.read(1)).rows == [b"dirty"]


def test_all_pinned_pool_exhaustion(disk, counters):
    pool = BufferPool(disk, capacity=8, counters=counters)
    for pid in range(1, 9):
        put_page(disk, pid)
        pool.fetch(pid)  # keep pinned
    put_page(disk, 9)
    with pytest.raises(BufferError_):
        pool.fetch(9)


def test_wal_hook_called_before_dirty_write(pool):
    flushed = []
    pool.set_wal_hook(flushed.append)
    page = pool.new_page(1)
    page.page_lsn = 777
    pool.unpin(1, dirty=True)
    pool.flush_page(1)
    assert flushed == [777]


def test_flush_pages_batches_and_cleans(pool, counters):
    for pid in (10, 11, 12):
        page = pool.new_page(pid)
        page.append_row(b"x")
        pool.unpin(pid, dirty=True)
    before = counters.disk_io_calls
    pool.flush_pages([10, 11, 12])
    assert pool.disk.exists(11)
    # Flushing again writes nothing: frames are clean now.
    mid = counters.disk_io_calls
    pool.flush_pages([10, 11, 12])
    assert counters.disk_io_calls == mid
    assert before < mid


def test_flush_pages_large_io_coalesces(counters):
    disk = Disk(io_size=2048 * 8, counters=counters)
    pool = BufferPool(disk, capacity=32, counters=counters)
    for pid in range(1, 17):
        page = pool.new_page(pid)
        pool.unpin(pid, dirty=True)
    before = counters.disk_io_calls
    pool.flush_pages(list(range(1, 17)))
    assert counters.disk_io_calls - before == 2  # 16 contiguous / 8 per IO


def test_crash_discards_unflushed(pool, disk):
    page = pool.new_page(1)
    page.append_row(b"lost")
    pool.unpin(1, dirty=True)
    pool.crash()
    assert not pool.is_resident(1)
    assert not disk.exists(1)


def test_drop_page_refuses_pinned(pool, disk):
    put_page(disk, 1)
    pool.fetch(1)
    with pytest.raises(BufferError_):
        pool.drop_page(1)
    pool.unpin(1)
    pool.drop_page(1)
    assert not pool.is_resident(1)


def test_large_io_fetch_populates_neighbors(counters):
    disk = Disk(io_size=2048 * 4, counters=counters)
    pool = BufferPool(disk, capacity=32, counters=counters)
    for pid in range(1, 9):
        put_page(disk, pid, b"p%d" % pid)
    before = counters.disk_io_calls
    pool.fetch(2, large_io=True)
    pool.unpin(2)
    assert counters.disk_io_calls - before == 1
    # Pages 1-4 (the aligned run) are now resident without further IO.
    assert pool.is_resident(1)
    assert pool.is_resident(4)
    assert not pool.is_resident(5)


def test_minimum_capacity_enforced(disk):
    with pytest.raises(BufferError_):
        BufferPool(disk, capacity=2)


def test_flush_pages_skips_clean_frames_entirely(pool, disk, monkeypatch):
    """Clean frames must not be serialized, let alone written."""
    put_page(disk, 1, b"clean")
    pool.fetch(1)
    pool.unpin(1)  # resident and clean
    page = pool.new_page(2)
    page.append_row(b"dirty")
    pool.unpin(2, dirty=True)

    serialized = []
    orig = Page.to_bytes

    def counting_to_bytes(self):
        serialized.append(self.page_id)
        return orig(self)

    monkeypatch.setattr(Page, "to_bytes", counting_to_bytes)
    before = pool.counters.page_writes
    pool.flush_pages([1, 2])
    assert serialized == [2]  # the clean frame was never touched
    assert pool.counters.page_writes - before == 1


def test_flush_pages_writes_duplicates_once(pool, counters):
    page = pool.new_page(5)
    page.append_row(b"x")
    pool.unpin(5, dirty=True)
    before = counters.page_writes
    pool.flush_pages([5, 5, 5])
    assert counters.page_writes - before == 1


def test_read_aligned_run_survives_prefetch_eviction(counters):
    """Regression: when the run's prefetch fills the pool, the admissions
    must not evict the not-yet-pinned target page itself (which used to
    force a second, redundant physical read of the target)."""
    disk = Disk(io_size=2048 * 8, counters=counters)  # 8 pages per IO
    pool = BufferPool(disk, capacity=8, counters=counters)
    for pid in range(1, 17):
        put_page(disk, pid, b"p%d" % pid)
    # Pin 7 frames from the second run: one evictable slot remains.
    for pid in range(9, 16):
        pool.fetch(pid)
    before = counters.disk_io_calls
    page = pool.fetch(1, large_io=True)  # run 1-8 wants 8 frames
    assert counters.disk_io_calls - before == 1  # the run read, nothing more
    assert page.rows == [b"p1"]
    assert pool.is_resident(1)
    assert pool.pin_count(1) == 1
    pool.unpin(1)  # must not raise: the frame returned is the resident one
    for pid in range(9, 16):
        pool.unpin(pid)


def test_prefetch_resident_page_skips_io_and_counts(pool, disk, counters):
    put_page(disk, 1)
    pool.fetch(1)
    pool.unpin(1)
    before_io = counters.disk_io_calls
    before_skip = counters.prefetch_skipped_resident
    nxt = pool.prefetch(1)
    assert counters.disk_io_calls == before_io  # answered from the pool
    assert counters.prefetch_skipped_resident == before_skip + 1
    assert nxt == pool.fetch(1).next_page
    pool.unpin(1)


def test_prefetch_reads_whole_aligned_run(counters):
    """A prefetch miss batches like the demand-miss path: one physical
    call pulls the full aligned run in, target plus neighbors, so one
    reader thread can stay ahead of several copy workers."""
    disk = Disk(io_size=2048 * 4, counters=counters)  # 4 pages per IO
    pool = BufferPool(disk, capacity=8, counters=counters)
    for pid in range(1, 9):
        put_page(disk, pid, b"p%d" % pid)
    before = counters.disk_io_calls
    pool.prefetch(6)  # aligned run is 5..8
    assert counters.disk_io_calls - before == 1
    for pid in (5, 6, 7, 8):
        assert pool.is_resident(pid), pid
    # Neighbors were admitted unpinned at the LRU end: pressure reclaims
    # them first, and fetching one is a hit, not a second read.
    before = counters.disk_io_calls
    page = pool.fetch(7)
    assert counters.disk_io_calls == before
    assert page.rows == [b"p7"]
    pool.unpin(7)
