"""Threaded regressions: eviction I/O must not serialize the pool.

Dirty evictions historically wrote to disk *under* the pool lock, so any
concurrent hit — even of a different, resident page — stalled behind a
device write.  They now run through the per-shard in-flight-write table
with the lock released, like every other I/O path.  These tests gate the
pool on a disk whose writes (or reads) block on an event and prove other
threads still get through.
"""

import threading

import pytest

from repro.stats.counters import Counters
from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.page import Page


class GatedDisk:
    """Delegates to a real Disk; selected ops block until released."""

    def __init__(self, inner: Disk) -> None:
        self.inner = inner
        self.write_gate = threading.Event()
        self.write_gate.set()
        self.write_entered = threading.Event()

    def __getattr__(self, name):  # noqa: ANN001, ANN204 - delegation
        return getattr(self.inner, name)

    def write(self, page_id: int, image: bytes) -> None:
        self.write_entered.set()
        assert self.write_gate.wait(timeout=10), "write gate never released"
        self.inner.write(page_id, image)


def put_page(disk, pid: int) -> None:
    page = Page(pid, disk.page_size)
    disk.write(pid, page.to_bytes())


@pytest.fixture
def counters() -> Counters:
    return Counters()


def test_concurrent_hit_completes_while_dirty_eviction_writes(counters):
    disk = GatedDisk(Disk(counters=counters))
    pool = BufferPool(disk, capacity=8, counters=counters)
    for pid in range(1, 9):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid, dirty=(pid == 1))
    put_page(disk, 9)

    disk.write_gate.clear()

    def force_eviction() -> None:
        pool.fetch(9)  # miss: evicts LRU page 1, whose write blocks
        pool.unpin(9)

    evictor = threading.Thread(target=force_eviction)
    evictor.start()
    assert disk.write_entered.wait(timeout=10), "eviction never hit the disk"

    # The eviction write is parked inside the device.  A hit of another
    # resident page must not wait for it.
    done = threading.Event()

    def hit() -> None:
        page = pool.fetch(5)
        assert page.page_id == 5
        pool.unpin(5)
        done.set()

    reader = threading.Thread(target=hit)
    reader.start()
    completed = done.wait(timeout=5)
    disk.write_gate.set()
    reader.join(timeout=5)
    evictor.join(timeout=5)
    assert completed, "pool hit stalled behind an in-flight eviction write"
    assert not evictor.is_alive() and not reader.is_alive()
    assert pool.is_resident(9)
    assert disk.exists(1)  # the dirty victim landed on disk


def test_redirty_during_eviction_write_is_not_lost(counters):
    # Pin the victim's neighbor story differently: while page 1's eviction
    # write is parked in the device, a racing thread re-reads page 1 (it
    # is mid-eviction but still writable on disk once the gate opens) and
    # dirties other pages; nothing deadlocks and no update is lost.
    disk = GatedDisk(Disk(counters=counters))
    pool = BufferPool(disk, capacity=8, counters=counters)
    for pid in range(1, 9):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid, dirty=(pid == 1))
    put_page(disk, 9)
    disk.write_gate.clear()

    def force_eviction() -> None:
        pool.fetch(9)
        pool.unpin(9)

    evictor = threading.Thread(target=force_eviction)
    evictor.start()
    assert disk.write_entered.wait(timeout=10)

    mutated = threading.Event()

    def mutate_other() -> None:
        page = pool.fetch(4)
        page.append_row(b"late-update")
        pool.unpin(4, dirty=True)
        mutated.set()

    writer = threading.Thread(target=mutate_other)
    writer.start()
    completed = mutated.wait(timeout=5)
    disk.write_gate.set()
    writer.join(timeout=5)
    evictor.join(timeout=5)
    assert completed
    # Both threads actually finished — a timed-out join returns silently,
    # and flush_all below would deadlock behind a still-running eviction.
    assert not writer.is_alive() and not evictor.is_alive()
    pool.flush_all()
    fresh = BufferPool(disk.inner, capacity=8, counters=counters)
    assert fresh.fetch(4).rows == [b"late-update"]
    fresh.unpin(4)


def test_two_shards_write_concurrently(counters):
    # With two shards, two dirty evictions (one per shard) can both be
    # parked in the device at once — the second eviction does not queue
    # behind the first shard's lock.
    disk = GatedDisk(Disk(counters=counters))
    pool = BufferPool(disk, capacity=16, counters=counters, shards=2)
    for pid in range(1, 17):
        put_page(disk, pid)
        pool.fetch(pid)
        pool.unpin(pid, dirty=pid in (1, 2))
    for pid in (17, 18):  # one new page per shard
        put_page(disk, pid)
    disk.write_gate.clear()
    entered: list[int] = []
    entered_lock = threading.Lock()
    both_in = threading.Event()

    real_write = disk.inner.write

    def write(page_id: int, image: bytes) -> None:
        with entered_lock:
            entered.append(page_id)
            if len(entered) >= 2:
                both_in.set()
        assert disk.write_gate.wait(timeout=10)
        real_write(page_id, image)

    disk.write = write

    def evict(pid: int) -> None:
        pool.fetch(pid)
        pool.unpin(pid)

    threads = [
        threading.Thread(target=evict, args=(pid,)) for pid in (17, 18)
    ]
    for t in threads:
        t.start()
    overlapped = both_in.wait(timeout=5)
    disk.write_gate.set()
    for t in threads:
        t.join(timeout=5)
    assert overlapped, "shard evictions serialized instead of overlapping"
    assert not any(t.is_alive() for t in threads), "evictions never finished"
    assert sorted(entered)[:2] == [1, 2]
