#!/usr/bin/env python3
"""Line-coverage gate for the observability package (``src/repro/obs``).

CI has no ``coverage``/``pytest-cov`` wheel, so this uses the stdlib
:mod:`trace` module: it runs the obs *unit* test files under a counting
tracer (threads included) and compares executed lines against each
module's executable lines, derived from the compiled code objects.

Lines marked ``# pragma: no cover`` are excluded; when such a line opens
a block (ends with ``:``), the whole indented suite under it is excluded
too — the same contract the real coverage tool honors.

Usage::

    PYTHONPATH=src python tools/check_obs_coverage.py [--min 90]

Exits 1 when aggregate coverage over ``src/repro/obs`` falls below the
threshold, printing a per-file table either way.  The integration test
file is deliberately not part of the measured run: a settrace hook slows
the threaded rebuild scenario badly, and the unit files already drive
every line the package owns.
"""

from __future__ import annotations

import argparse
import sys
import threading
import trace as trace_mod
import types
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
OBS = SRC / "repro" / "obs"
UNIT_TESTS = [
    "tests/obs/test_tracer.py",
    "tests/obs/test_metrics.py",
    "tests/obs/test_progress.py",
    "tests/obs/test_console.py",
]


def executable_lines(path: Path) -> set[int]:
    """Line numbers the compiler can attribute code to, minus pragmas."""
    source = path.read_text(encoding="utf-8")
    code = compile(source, str(path), "exec")
    lines: set[int] = set()
    stack: list[types.CodeType] = [code]
    while stack:
        co = stack.pop()
        for _start, _end, lineno in co.co_lines():
            if lineno:  # skip None and the synthetic line-0 setup bytecode
                lines.add(lineno)
        for const in co.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines - pragma_lines(source)


def pragma_lines(source: str) -> set[int]:
    """Lines excluded by ``# pragma: no cover``, including the indented
    block under a pragma'd ``def``/``class``/compound-statement line."""
    out: set[int] = set()
    raw = source.splitlines()
    i = 0
    while i < len(raw):
        line = raw[i]
        if "pragma: no cover" in line:
            out.add(i + 1)
            stripped = line.rstrip()
            if stripped.endswith(":"):
                indent = len(line) - len(line.lstrip())
                j = i + 1
                while j < len(raw):
                    nxt = raw[j]
                    if nxt.strip() and (
                        len(nxt) - len(nxt.lstrip()) <= indent
                    ):
                        break
                    out.add(j + 1)
                    j += 1
                i = j
                continue
        i += 1
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min", type=float, default=90.0,
                        help="minimum aggregate percent (default 90)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    import pytest  # noqa: PLC0415 - after sys.path fix

    tracer = trace_mod.Trace(count=1, trace=0)
    threading.settrace(tracer.globaltrace)  # worker threads count too
    try:
        rc = tracer.runfunc(
            pytest.main, ["-q", "-p", "no:cacheprovider", *UNIT_TESTS]
        )
    finally:
        threading.settrace(None)  # type: ignore[arg-type]
    if rc != 0:
        print(f"obs unit tests failed (pytest exit {rc})", file=sys.stderr)
        return 1

    counts = tracer.results().counts
    covered_by_file: dict[str, set[int]] = {}
    for (filename, lineno), hit in counts.items():
        if hit:
            covered_by_file.setdefault(filename, set()).add(lineno)

    total_exec = 0
    total_cov = 0
    rows = []
    for path in sorted(OBS.glob("*.py")):
        want = executable_lines(path)
        got = covered_by_file.get(str(path), set()) & want
        missing = sorted(want - got)
        total_exec += len(want)
        total_cov += len(got)
        pct = 100.0 * len(got) / len(want) if want else 100.0
        rows.append((path.name, len(got), len(want), pct, missing))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'file':<{width}}  {'covered':>8}  {'lines':>6}  {'pct':>6}")
    for name, got, want, pct, missing in rows:
        print(f"{name:<{width}}  {got:>8}  {want:>6}  {pct:>5.1f}%")
        if missing:
            print(f"{'':<{width}}  missing: {_ranges(missing)}")
    aggregate = 100.0 * total_cov / max(total_exec, 1)
    print(f"{'TOTAL':<{width}}  {total_cov:>8}  {total_exec:>6}  "
          f"{aggregate:>5.1f}%  (gate: >= {args.min:.0f}%)")
    if aggregate < args.min:
        print(
            f"FAIL: repro/obs coverage {aggregate:.1f}% < {args.min:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _ranges(lines: list[int]) -> str:
    """Compress [3,4,5,9] to '3-5, 9'."""
    spans: list[str] = []
    start = prev = lines[0]
    for n in lines[1:] + [None]:  # type: ignore[list-item]
        if n is not None and n == prev + 1:
            prev = n
            continue
        spans.append(str(start) if start == prev else f"{start}-{prev}")
        if n is not None:
            start = prev = n
    return ", ".join(spans)


if __name__ == "__main__":
    raise SystemExit(main())
