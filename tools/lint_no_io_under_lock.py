#!/usr/bin/env python3
"""AST lint: no physical disk I/O may be issued while holding a pool lock.

The buffer pool's docstring promises that every disk call — miss reads,
prefetch reads, batch flushes, dirty-eviction writes — runs with the
shard lock *released*.  This tool turns that promise from convention into
a static guarantee: it fails if any ``*.disk.*(...)`` call is
syntactically nested inside a ``with <lock-ish>:`` block in the storage
layer.

What counts as a lock-ish ``with`` context manager:

* any expression whose source mentions a lock-flavored word
  (``lock``, ``cond``, ``cv``, ``latch``, ``mutex``, ``gate``,
  ``shard``), e.g. ``with self._lock:``, ``with shard.cond:``;
* any bare-name context manager (``with shard:``, ``with neighbor:``) —
  in ``storage/`` those are shard lock scopes, and erring broad keeps a
  renamed shard variable from silently escaping the lint.

Exemption: a lambda or nested ``def`` passed as an argument to a
``*._io_unlocked(...)`` call is *not* flagged even when it contains disk
calls — that helper's contract is to release the lock around the call.
Functions passed to ``retrying(...)`` get no such exemption: ``retrying``
runs its callable on the current thread under whatever locks are held.

Usage::

    python tools/lint_no_io_under_lock.py [paths...]

Defaults to ``src/repro/storage``.  Exits 1 and prints one line per
violation (``file:line: message``) when any are found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

LOCKISH_WORDS = ("lock", "cond", "cv", "latch", "mutex", "gate", "shard")


def _is_lockish(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return True  # bare-name context managers in storage/ are shards
    source = ast.unparse(expr).lower()
    return any(word in source for word in LOCKISH_WORDS)


def _is_disk_call(call: ast.Call) -> bool:
    """True for calls whose attribute chain goes through ``.disk``."""
    node = call.func
    if not isinstance(node, ast.Attribute):
        return False
    node = node.value  # the object the method is called on
    while isinstance(node, ast.Attribute):
        if node.attr == "disk":
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id == "disk"


def _exempt_subtrees(tree: ast.AST) -> set[int]:
    """ids() of Lambda/def nodes passed as arguments to ``_io_unlocked``."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_io_unlocked"
        ):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Lambda, ast.FunctionDef)):
                exempt.add(id(arg))
    return exempt


def _walk_flagging(
    node: ast.AST, exempt: set[int], violations: list[tuple[int, str]]
) -> None:
    """Flag disk calls under this (lock-held) subtree, honoring exemptions."""
    for child in ast.iter_child_nodes(node):
        if id(child) in exempt:
            continue
        if isinstance(child, ast.Call) and _is_disk_call(child):
            violations.append(
                (
                    child.lineno,
                    f"disk call `{ast.unparse(child.func)}(...)` "
                    "inside a lock-holding `with` block",
                )
            )
        _walk_flagging(child, exempt, violations)


def check_source(source: str) -> list[tuple[int, str]]:
    """Return (lineno, message) violations for one module's source."""
    tree = ast.parse(source)
    exempt = _exempt_subtrees(tree)
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if id(node) in exempt:
            continue
        if isinstance(node, ast.With) and any(
            _is_lockish(item.context_expr) for item in node.items
        ):
            for stmt in node.body:
                _walk_flagging(stmt, exempt, violations)
    return sorted(set(violations))


def check_file(path: Path) -> list[str]:
    return [
        f"{path}:{lineno}: {message}"
        for lineno, message in check_source(path.read_text())
    ]


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in argv] or [Path("src/repro/storage")]
    files: list[Path] = []
    for root in roots:
        files.extend(sorted(root.rglob("*.py")) if root.is_dir() else [root])
    failures: list[str] = []
    for path in files:
        failures.extend(check_file(path))
    for line in failures:
        print(line)
    if failures:
        print(f"lint_no_io_under_lock: {len(failures)} violation(s)")
        return 1
    print(f"lint_no_io_under_lock: OK ({len(files)} file(s) clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
